//! Machine descriptions: function-unit types and period bounds.

use crate::restable::ReservationTable;
use std::error::Error;
use std::fmt;
use swp_ddg::{Ddg, OpClass};

/// One function-unit type: `count` identical physical copies, each
/// described by the same reservation table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuType {
    /// Human-readable name ("FP", "Load/Store", …).
    pub name: String,
    /// Number of physical copies `R_r`.
    pub count: u32,
    /// Result latency `d_i` for dependence purposes.
    pub latency: u32,
    /// Stage-occupancy pattern of one operation.
    pub reservation: ReservationTable,
}

/// Errors raised by machine construction or queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A DDG referenced a class index this machine does not define.
    UnknownClass(OpClass),
    /// A function-unit type was declared with zero copies.
    NoUnits(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::UnknownClass(c) => write!(f, "machine has no unit type for {c}"),
            MachineError::NoUnits(n) => write!(f, "unit type `{n}` has zero copies"),
        }
    }
}

impl Error for MachineError {}

/// A target machine: an indexed list of function-unit types.
/// [`OpClass::index`] of a DDG node selects into this list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    types: Vec<FuType>,
}

impl Machine {
    /// Creates a machine from unit types.
    ///
    /// # Errors
    ///
    /// [`MachineError::NoUnits`] if any type has `count == 0`.
    pub fn new(types: Vec<FuType>) -> Result<Self, MachineError> {
        for t in &types {
            if t.count == 0 {
                return Err(MachineError::NoUnits(t.name.clone()));
            }
        }
        Ok(Machine { types })
    }

    /// Number of unit types (classes).
    pub fn num_classes(&self) -> usize {
        self.types.len()
    }

    /// The unit type for `class`.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownClass`] if the index is out of range.
    pub fn fu_type(&self, class: OpClass) -> Result<&FuType, MachineError> {
        self.types
            .get(class.index())
            .ok_or(MachineError::UnknownClass(class))
    }

    /// All unit types in class order.
    pub fn types(&self) -> &[FuType] {
        &self.types
    }

    /// The dependence latency of `class` operations.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownClass`] if the index is out of range.
    pub fn latency(&self, class: OpClass) -> Result<u32, MachineError> {
        Ok(self.fu_type(class)?.latency)
    }

    /// The resource lower bound `T_res` for scheduling `ddg` here.
    ///
    /// For each class `r` with `N_r` operations, each operation occupies
    /// stage `s` for `marks_r(s)` cycles per period, and the class has
    /// `R_r` copies, so `T ≥ ⌈N_r · marks_r(s) / R_r⌉` for every stage.
    /// Fixed FU assignment additionally requires each table to repeat
    /// without self-collision, so `T` is also at least each used class's
    /// [`ReservationTable::min_self_period`].
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownClass`] if the DDG uses an undefined class.
    pub fn t_res(&self, ddg: &Ddg) -> Result<u32, MachineError> {
        let mut bound = self.t_res_counting(ddg)?;
        // Packing refinement: advance past periods where some class's
        // operations provably cannot pack onto its units (exact per-unit
        // capacity, see `ReservationTable::max_ops_per_period`). Only
        // infeasible periods are skipped, so this stays a lower bound;
        // the cap guards against pathological non-monotone tables.
        let cap = bound + 64;
        while bound < cap && !self.classes_pack(ddg, bound)? {
            bound += 1;
        }
        Ok(bound)
    }

    /// The paper's original counting bound: busiest-stage demand divided
    /// by unit count, plus each used table's minimum self-period. This is
    /// what the paper's Table 4 buckets are measured against; [`Machine::t_res`]
    /// strengthens it with the exact packing capacity.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownClass`] if the DDG uses an undefined class.
    pub fn t_res_counting(&self, ddg: &Ddg) -> Result<u32, MachineError> {
        let mut bound = 1u32;
        for class in ddg.classes() {
            let fu = self.fu_type(class)?;
            let n_ops = ddg.nodes_of_class(class).len() as u32;
            for s in 0..fu.reservation.stages() {
                let marks = fu.reservation.stage_offsets(s).len() as u32;
                bound = bound.max((n_ops * marks).div_ceil(fu.count));
            }
            bound = bound.max(fu.reservation.min_self_period());
        }
        Ok(bound)
    }

    /// The resource bound for the *run-time unit choice* relaxation
    /// (paper eq. (5) without fixed assignment): pure stage-demand
    /// counting, with no per-table self-period term — successive
    /// instances of one op may rotate across units.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownClass`] if the DDG uses an undefined class.
    pub fn t_res_capacity(&self, ddg: &Ddg) -> Result<u32, MachineError> {
        let mut bound = 1u32;
        for class in ddg.classes() {
            let fu = self.fu_type(class)?;
            let n_ops = ddg.nodes_of_class(class).len() as u32;
            for s in 0..fu.reservation.stages() {
                let marks = fu.reservation.stage_offsets(s).len() as u32;
                bound = bound.max((n_ops * marks).div_ceil(fu.count));
            }
        }
        Ok(bound)
    }

    /// Whether every class's operations can, ignoring dependences, be
    /// packed onto its physical units at period `t` (a necessary
    /// condition for any schedule at `t`).
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownClass`] if the DDG uses an undefined class.
    pub fn classes_pack(&self, ddg: &Ddg, t: u32) -> Result<bool, MachineError> {
        for class in ddg.classes() {
            let fu = self.fu_type(class)?;
            let n_ops = ddg.nodes_of_class(class).len() as u32;
            if n_ops == 0 {
                continue;
            }
            if n_ops > fu.count * fu.reservation.max_ops_per_period(t) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The combined period lower bound `T_lb = max(T_dep, T_res)`.
    ///
    /// Returns `Ok(None)` when `T_dep` is undefined (zero-distance cycle).
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownClass`] if the DDG uses an undefined class.
    pub fn t_lower_bound(&self, ddg: &Ddg) -> Result<Option<u32>, MachineError> {
        let t_res = self.t_res(ddg)?;
        Ok(ddg.t_dep().map(|t_dep| t_dep.max(t_res)))
    }

    /// The machine of the paper's motivating example (§2, reconstructed):
    ///
    /// * class 0 `Int`: 1 unit, latency 1, clean;
    /// * class 1 `FP`: 2 units, latency 2, 3-stage pipeline whose third
    ///   stage is used at offsets 1 *and* 2 — the structural hazard of
    ///   Figure 2(d);
    /// * class 2 `Ld/St`: 1 unit, latency 3, clean.
    pub fn example_pldi95() -> Machine {
        Machine::new(vec![
            FuType {
                name: "Int".into(),
                count: 1,
                latency: 1,
                reservation: ReservationTable::clean(1),
            },
            FuType {
                name: "FP".into(),
                count: 2,
                latency: 2,
                reservation: ReservationTable::from_rows(&[
                    &[true, false, false],
                    &[false, true, false],
                    &[false, true, true],
                ])
                .expect("static table"),
            },
            FuType {
                name: "Ld/St".into(),
                count: 1,
                latency: 3,
                reservation: ReservationTable::clean(3),
            },
        ])
        .expect("static machine")
    }

    /// The same machine with *clean* pipelines everywhere — the baseline
    /// world of Govindarajan/Altman/Gao (MICRO '94), used to show what
    /// the hazard constraints add.
    pub fn example_clean() -> Machine {
        Machine::new(vec![
            FuType {
                name: "Int".into(),
                count: 1,
                latency: 1,
                reservation: ReservationTable::clean(1),
            },
            FuType {
                name: "FP".into(),
                count: 2,
                latency: 2,
                reservation: ReservationTable::clean(2),
            },
            FuType {
                name: "Ld/St".into(),
                count: 1,
                latency: 3,
                reservation: ReservationTable::clean(3),
            },
        ])
        .expect("static machine")
    }

    /// The same machine with FP and Ld/St *non-pipelined* — the setting
    /// of the paper's Problem 1 (§4).
    pub fn example_non_pipelined() -> Machine {
        Machine::new(vec![
            FuType {
                name: "Int".into(),
                count: 1,
                latency: 1,
                reservation: ReservationTable::clean(1),
            },
            FuType {
                name: "FP".into(),
                count: 2,
                latency: 2,
                reservation: ReservationTable::non_pipelined(2),
            },
            FuType {
                name: "Ld/St".into(),
                count: 1,
                latency: 3,
                reservation: ReservationTable::non_pipelined(3),
            },
        ])
        .expect("static machine")
    }

    /// A PowerPC-604-flavoured model, following the latencies the paper's
    /// evaluation borrows from the 604 Technical Summary [14]:
    ///
    /// * class 0 `SCIU` (simple integer, ×2): latency 1, clean;
    /// * class 1 `MCIU` (multi-cycle integer): multiply latency 4,
    ///   pipelined with a hazard (iteration stage reused);
    /// * class 2 `FPU`: latency 3, 3-stage pipeline with a hazard on the
    ///   normalize stage;
    /// * class 3 `LSU` (load/store): latency 3, clean 2-stage;
    /// * class 4 `FDIV` (divide, shares FPU silicon on the 604 — modeled
    ///   as one non-pipelined unit): latency 18;
    /// * class 5 `BPU` (branch): latency 1, clean.
    pub fn ppc604() -> Machine {
        Machine::new(vec![
            FuType {
                name: "SCIU".into(),
                count: 2,
                latency: 1,
                reservation: ReservationTable::clean(1),
            },
            FuType {
                name: "MCIU".into(),
                count: 1,
                latency: 4,
                reservation: ReservationTable::from_rows(&[
                    &[true, false, false, false],
                    &[false, true, true, false],
                    &[false, false, false, true],
                ])
                .expect("static table"),
            },
            FuType {
                name: "FPU".into(),
                count: 1,
                latency: 3,
                reservation: ReservationTable::from_rows(&[
                    &[true, false, false],
                    &[false, true, false],
                    &[false, true, true],
                ])
                .expect("static table"),
            },
            FuType {
                name: "LSU".into(),
                count: 1,
                latency: 3,
                reservation: ReservationTable::from_rows(&[
                    &[true, false, false],
                    &[false, true, false],
                ])
                .expect("static table"),
            },
            FuType {
                name: "FDIV".into(),
                count: 1,
                latency: 18,
                reservation: ReservationTable::non_pipelined(18),
            },
            FuType {
                name: "BPU".into(),
                count: 1,
                latency: 1,
                reservation: ReservationTable::clean(1),
            },
        ])
        .expect("static machine")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_fp_ddg() -> Ddg {
        let mut g = Ddg::new();
        let a = g.add_node("a", OpClass::new(1), 2);
        let b = g.add_node("b", OpClass::new(1), 2);
        g.add_edge(a, b, 0).unwrap();
        g
    }

    #[test]
    fn zero_count_rejected() {
        let err = Machine::new(vec![FuType {
            name: "X".into(),
            count: 0,
            latency: 1,
            reservation: ReservationTable::clean(1),
        }])
        .unwrap_err();
        assert_eq!(err, MachineError::NoUnits("X".into()));
    }

    #[test]
    fn unknown_class_detected() {
        let m = Machine::example_clean();
        let mut g = Ddg::new();
        g.add_node("z", OpClass::new(9), 1);
        assert_eq!(
            m.t_res(&g).unwrap_err(),
            MachineError::UnknownClass(OpClass::new(9))
        );
    }

    #[test]
    fn t_res_clean_counts_ops_per_unit() {
        // 2 FP ops on 2 clean FP units -> T_res 1.
        let m = Machine::example_clean();
        assert_eq!(m.t_res(&two_fp_ddg()).unwrap(), 1);
    }

    #[test]
    fn t_res_non_pipelined_scales_with_latency() {
        // 2 FP ops, non-pipelined lat 2, 2 units -> ceil(2*2/2) = 2.
        let m = Machine::example_non_pipelined();
        assert_eq!(m.t_res(&two_fp_ddg()).unwrap(), 2);
    }

    #[test]
    fn t_res_hazard_counts_busiest_stage() {
        // Hazard FP: stage 3 has 2 marks; 2 ops on 2 units ->
        // max(ceil(2*2/2), min_self_period=2) = 2.
        let m = Machine::example_pldi95();
        assert_eq!(m.t_res(&two_fp_ddg()).unwrap(), 2);
    }

    #[test]
    fn t_lower_bound_combines_dep_and_res() {
        let m = Machine::example_clean();
        let mut g = two_fp_ddg();
        // add a strong recurrence: self-loop lat 2 / dist 1 on node 0 -> T_dep 2.
        let ids: Vec<_> = g.node_ids().collect();
        g.add_edge(ids[0], ids[0], 1).unwrap();
        assert_eq!(m.t_lower_bound(&g).unwrap(), Some(2));
    }

    #[test]
    fn example_machines_are_consistent() {
        for m in [
            Machine::example_pldi95(),
            Machine::example_clean(),
            Machine::example_non_pipelined(),
            Machine::ppc604(),
        ] {
            for t in m.types() {
                assert!(t.count > 0);
                assert!(t.latency > 0);
                assert!(t.reservation.exec_time() > 0);
            }
        }
    }

    #[test]
    fn ppc604_divide_is_slow_and_exclusive() {
        let m = Machine::ppc604();
        let fdiv = m.fu_type(OpClass::new(4)).unwrap();
        assert_eq!(fdiv.latency, 18);
        assert_eq!(fdiv.reservation.min_self_period(), 18);
    }
}
