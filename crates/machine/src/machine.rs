//! Machine descriptions: function-unit types and period bounds.

use crate::restable::ReservationTable;
use std::error::Error;
use std::fmt;
use swp_ddg::{Ddg, OpClass};

/// One function-unit type: `count` identical physical copies, each
/// described by the same reservation table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuType {
    /// Human-readable name ("FP", "Load/Store", …).
    pub name: String,
    /// Number of physical copies `R_r`.
    pub count: u32,
    /// Result latency `d_i` for dependence purposes.
    pub latency: u32,
    /// Stage-occupancy pattern of one operation.
    pub reservation: ReservationTable,
}

/// Errors raised by machine construction or queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A DDG referenced a class index this machine does not define.
    UnknownClass(OpClass),
    /// A function-unit type was declared with zero copies.
    NoUnits(String),
    /// An issue-bundle specification is malformed (zero width, empty or
    /// out-of-range slot group, zero cap).
    BadBundle(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::UnknownClass(c) => write!(f, "machine has no unit type for {c}"),
            MachineError::NoUnits(n) => write!(f, "unit type `{n}` has zero copies"),
            MachineError::BadBundle(why) => write!(f, "bad issue bundle: {why}"),
        }
    }
}

impl Error for MachineError {}

/// One named slot group of a VLIW issue bundle: at most `cap`
/// operations whose class is in `classes` may issue in any one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotGroup {
    /// Human-readable name ("mem", "fp", …).
    pub name: String,
    /// Per-cycle issue cap for member classes combined.
    pub cap: u32,
    /// Member class indices (into [`Machine::types`]).
    pub classes: Vec<usize>,
}

/// Per-cycle issue-bundle constraints of a VLIW-style target: a total
/// issue width plus optional slot-class groups. In a modulo schedule
/// with period `T` the steady-state issues of cycle `c` are exactly the
/// operations with `t_i ≡ c (mod T)`, so the bundle constrains the
/// number of start times per residue — a synthetic shared resource next
/// to the per-unit reservation tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleSpec {
    /// Total operations that may issue in one cycle.
    pub width: u32,
    /// Slot-class groups, each capping a subset of classes.
    pub groups: Vec<SlotGroup>,
}

impl BundleSpec {
    /// A bundle with only a total width, no slot groups.
    pub fn width(width: u32) -> Self {
        BundleSpec {
            width,
            groups: Vec::new(),
        }
    }

    /// The per-cycle issue limits as `(cap, member-filter)` rows: the
    /// total width over all classes, then each slot group. `None`
    /// means "every class counts".
    pub fn limits(&self) -> impl Iterator<Item = (u32, Option<&[usize]>)> {
        std::iter::once((self.width, None)).chain(
            self.groups
                .iter()
                .map(|g| (g.cap, Some(g.classes.as_slice()))),
        )
    }
}

/// A target machine: an indexed list of function-unit types.
/// [`OpClass::index`] of a DDG node selects into this list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    types: Vec<FuType>,
    bundle: Option<BundleSpec>,
}

impl Machine {
    /// Creates a machine from unit types.
    ///
    /// # Errors
    ///
    /// [`MachineError::NoUnits`] if any type has `count == 0`.
    pub fn new(types: Vec<FuType>) -> Result<Self, MachineError> {
        for t in &types {
            if t.count == 0 {
                return Err(MachineError::NoUnits(t.name.clone()));
            }
        }
        Ok(Machine {
            types,
            bundle: None,
        })
    }

    /// Attaches VLIW issue-bundle constraints to this machine.
    ///
    /// # Errors
    ///
    /// [`MachineError::BadBundle`] if the width or any slot-group cap is
    /// zero, a group has no member classes or a duplicate member, or a
    /// member class index is out of range.
    pub fn with_bundle(mut self, bundle: BundleSpec) -> Result<Self, MachineError> {
        if bundle.width == 0 {
            return Err(MachineError::BadBundle("issue width is zero".into()));
        }
        for g in &bundle.groups {
            if g.cap == 0 {
                return Err(MachineError::BadBundle(format!(
                    "slot group `{}` has cap zero",
                    g.name
                )));
            }
            if g.classes.is_empty() {
                return Err(MachineError::BadBundle(format!(
                    "slot group `{}` has no member classes",
                    g.name
                )));
            }
            let mut seen = vec![false; self.types.len()];
            for &c in &g.classes {
                if c >= self.types.len() {
                    return Err(MachineError::BadBundle(format!(
                        "slot group `{}` references class {c} of {}",
                        g.name,
                        self.types.len()
                    )));
                }
                if seen[c] {
                    return Err(MachineError::BadBundle(format!(
                        "slot group `{}` lists class {c} twice",
                        g.name
                    )));
                }
                seen[c] = true;
            }
        }
        self.bundle = Some(bundle);
        Ok(self)
    }

    /// The issue-bundle constraints, if this is a VLIW-style target.
    pub fn bundle(&self) -> Option<&BundleSpec> {
        self.bundle.as_ref()
    }

    /// Number of unit types (classes).
    pub fn num_classes(&self) -> usize {
        self.types.len()
    }

    /// The unit type for `class`.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownClass`] if the index is out of range.
    pub fn fu_type(&self, class: OpClass) -> Result<&FuType, MachineError> {
        self.types
            .get(class.index())
            .ok_or(MachineError::UnknownClass(class))
    }

    /// All unit types in class order.
    pub fn types(&self) -> &[FuType] {
        &self.types
    }

    /// The dependence latency of `class` operations.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownClass`] if the index is out of range.
    pub fn latency(&self, class: OpClass) -> Result<u32, MachineError> {
        Ok(self.fu_type(class)?.latency)
    }

    /// The resource lower bound `T_res` for scheduling `ddg` here.
    ///
    /// For each class `r` with `N_r` operations, each operation occupies
    /// stage `s` for `marks_r(s)` cycles per period, and the class has
    /// `R_r` copies, so `T ≥ ⌈N_r · marks_r(s) / R_r⌉` for every stage.
    /// Fixed FU assignment additionally requires each table to repeat
    /// without self-collision, so `T` is also at least each used class's
    /// [`ReservationTable::min_self_period`].
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownClass`] if the DDG uses an undefined class.
    pub fn t_res(&self, ddg: &Ddg) -> Result<u32, MachineError> {
        let mut bound = self.t_res_counting(ddg)?;
        // Packing refinement: advance past periods where some class's
        // operations provably cannot pack onto its units (exact per-unit
        // capacity, see `ReservationTable::max_ops_per_period`). Only
        // infeasible periods are skipped, so this stays a lower bound;
        // the cap guards against pathological non-monotone tables.
        let cap = bound + 64;
        while bound < cap && !self.classes_pack(ddg, bound)? {
            bound += 1;
        }
        Ok(bound)
    }

    /// The paper's original counting bound: busiest-stage demand divided
    /// by unit count, plus each used table's minimum self-period. This is
    /// what the paper's Table 4 buckets are measured against; [`Machine::t_res`]
    /// strengthens it with the exact packing capacity.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownClass`] if the DDG uses an undefined class.
    pub fn t_res_counting(&self, ddg: &Ddg) -> Result<u32, MachineError> {
        let mut bound = 1u32;
        for class in ddg.classes() {
            let fu = self.fu_type(class)?;
            let n_ops = ddg.nodes_of_class(class).len() as u32;
            for s in 0..fu.reservation.stages() {
                let marks = fu.reservation.stage_offsets(s).len() as u32;
                bound = bound.max((n_ops * marks).div_ceil(fu.count));
            }
            bound = bound.max(fu.reservation.min_self_period());
        }
        Ok(bound.max(self.bundle_bound(ddg)?))
    }

    /// The issue-bundle pigeonhole bound: every operation issues once
    /// per iteration, at most `width` per cycle (and at most `cap` per
    /// slot group), so `T ≥ ⌈N/width⌉` and `T ≥ ⌈N_g/cap_g⌉`. Returns
    /// `1` for machines without a bundle.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownClass`] if the DDG uses an undefined class.
    pub fn bundle_bound(&self, ddg: &Ddg) -> Result<u32, MachineError> {
        let Some(bundle) = &self.bundle else {
            return Ok(1);
        };
        let mut per_class = vec![0u32; self.types.len()];
        let mut total = 0u32;
        for class in ddg.classes() {
            self.fu_type(class)?;
            let n = ddg.nodes_of_class(class).len() as u32;
            per_class[class.index()] = n;
            total += n;
        }
        let mut bound = 1u32.max(total.div_ceil(bundle.width));
        for g in &bundle.groups {
            let members: u32 = g.classes.iter().map(|&c| per_class[c]).sum();
            bound = bound.max(members.div_ceil(g.cap));
        }
        Ok(bound)
    }

    /// The resource bound for the *run-time unit choice* relaxation
    /// (paper eq. (5) without fixed assignment): pure stage-demand
    /// counting, with no per-table self-period term — successive
    /// instances of one op may rotate across units.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownClass`] if the DDG uses an undefined class.
    pub fn t_res_capacity(&self, ddg: &Ddg) -> Result<u32, MachineError> {
        let mut bound = 1u32;
        for class in ddg.classes() {
            let fu = self.fu_type(class)?;
            let n_ops = ddg.nodes_of_class(class).len() as u32;
            for s in 0..fu.reservation.stages() {
                let marks = fu.reservation.stage_offsets(s).len() as u32;
                bound = bound.max((n_ops * marks).div_ceil(fu.count));
            }
        }
        Ok(bound.max(self.bundle_bound(ddg)?))
    }

    /// Whether every class's operations can, ignoring dependences, be
    /// packed onto its physical units at period `t` (a necessary
    /// condition for any schedule at `t`).
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownClass`] if the DDG uses an undefined class.
    pub fn classes_pack(&self, ddg: &Ddg, t: u32) -> Result<bool, MachineError> {
        for class in ddg.classes() {
            let fu = self.fu_type(class)?;
            let n_ops = ddg.nodes_of_class(class).len() as u32;
            if n_ops == 0 {
                continue;
            }
            if n_ops > fu.count * fu.reservation.max_ops_per_period(t) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The combined period lower bound `T_lb = max(T_dep, T_res)`.
    ///
    /// Returns `Ok(None)` when `T_dep` is undefined (zero-distance cycle).
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownClass`] if the DDG uses an undefined class.
    pub fn t_lower_bound(&self, ddg: &Ddg) -> Result<Option<u32>, MachineError> {
        let t_res = self.t_res(ddg)?;
        Ok(ddg.t_dep().map(|t_dep| t_dep.max(t_res)))
    }

    /// The machine of the paper's motivating example (§2, reconstructed):
    ///
    /// * class 0 `Int`: 1 unit, latency 1, clean;
    /// * class 1 `FP`: 2 units, latency 2, 3-stage pipeline whose third
    ///   stage is used at offsets 1 *and* 2 — the structural hazard of
    ///   Figure 2(d);
    /// * class 2 `Ld/St`: 1 unit, latency 3, clean.
    pub fn example_pldi95() -> Machine {
        Machine::new(vec![
            FuType {
                name: "Int".into(),
                count: 1,
                latency: 1,
                reservation: ReservationTable::clean(1),
            },
            FuType {
                name: "FP".into(),
                count: 2,
                latency: 2,
                reservation: ReservationTable::from_rows(&[
                    &[true, false, false],
                    &[false, true, false],
                    &[false, true, true],
                ])
                .expect("static table"),
            },
            FuType {
                name: "Ld/St".into(),
                count: 1,
                latency: 3,
                reservation: ReservationTable::clean(3),
            },
        ])
        .expect("static machine")
    }

    /// The same machine with *clean* pipelines everywhere — the baseline
    /// world of Govindarajan/Altman/Gao (MICRO '94), used to show what
    /// the hazard constraints add.
    pub fn example_clean() -> Machine {
        Machine::new(vec![
            FuType {
                name: "Int".into(),
                count: 1,
                latency: 1,
                reservation: ReservationTable::clean(1),
            },
            FuType {
                name: "FP".into(),
                count: 2,
                latency: 2,
                reservation: ReservationTable::clean(2),
            },
            FuType {
                name: "Ld/St".into(),
                count: 1,
                latency: 3,
                reservation: ReservationTable::clean(3),
            },
        ])
        .expect("static machine")
    }

    /// The same machine with FP and Ld/St *non-pipelined* — the setting
    /// of the paper's Problem 1 (§4).
    pub fn example_non_pipelined() -> Machine {
        Machine::new(vec![
            FuType {
                name: "Int".into(),
                count: 1,
                latency: 1,
                reservation: ReservationTable::clean(1),
            },
            FuType {
                name: "FP".into(),
                count: 2,
                latency: 2,
                reservation: ReservationTable::non_pipelined(2),
            },
            FuType {
                name: "Ld/St".into(),
                count: 1,
                latency: 3,
                reservation: ReservationTable::non_pipelined(3),
            },
        ])
        .expect("static machine")
    }

    /// A PowerPC-604-flavoured model, following the latencies the paper's
    /// evaluation borrows from the 604 Technical Summary [14]:
    ///
    /// * class 0 `SCIU` (simple integer, ×2): latency 1, clean;
    /// * class 1 `MCIU` (multi-cycle integer): multiply latency 4,
    ///   pipelined with a hazard (iteration stage reused);
    /// * class 2 `FPU`: latency 3, 3-stage pipeline with a hazard on the
    ///   normalize stage;
    /// * class 3 `LSU` (load/store): latency 3, clean 2-stage;
    /// * class 4 `FDIV` (divide, shares FPU silicon on the 604 — modeled
    ///   as one non-pipelined unit): latency 18;
    /// * class 5 `BPU` (branch): latency 1, clean.
    pub fn ppc604() -> Machine {
        Machine::new(vec![
            FuType {
                name: "SCIU".into(),
                count: 2,
                latency: 1,
                reservation: ReservationTable::clean(1),
            },
            FuType {
                name: "MCIU".into(),
                count: 1,
                latency: 4,
                reservation: ReservationTable::from_rows(&[
                    &[true, false, false, false],
                    &[false, true, true, false],
                    &[false, false, false, true],
                ])
                .expect("static table"),
            },
            FuType {
                name: "FPU".into(),
                count: 1,
                latency: 3,
                reservation: ReservationTable::from_rows(&[
                    &[true, false, false],
                    &[false, true, false],
                    &[false, true, true],
                ])
                .expect("static table"),
            },
            FuType {
                name: "LSU".into(),
                count: 1,
                latency: 3,
                reservation: ReservationTable::from_rows(&[
                    &[true, false, false],
                    &[false, true, false],
                ])
                .expect("static table"),
            },
            FuType {
                name: "FDIV".into(),
                count: 1,
                latency: 18,
                reservation: ReservationTable::non_pipelined(18),
            },
            FuType {
                name: "BPU".into(),
                count: 1,
                latency: 1,
                reservation: ReservationTable::clean(1),
            },
        ])
        .expect("static machine")
    }

    /// A VLIW flavour of the clean example machine: the same three unit
    /// types behind a 2-wide issue bundle whose single slot group lets
    /// only one memory operation (`Ld/St`) issue per cycle.
    pub fn example_vliw() -> Machine {
        Machine::example_clean()
            .with_bundle(BundleSpec {
                width: 2,
                groups: vec![SlotGroup {
                    name: "mem".into(),
                    cap: 1,
                    classes: vec![2],
                }],
            })
            .expect("static bundle")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_fp_ddg() -> Ddg {
        let mut g = Ddg::new();
        let a = g.add_node("a", OpClass::new(1), 2);
        let b = g.add_node("b", OpClass::new(1), 2);
        g.add_edge(a, b, 0).unwrap();
        g
    }

    #[test]
    fn zero_count_rejected() {
        let err = Machine::new(vec![FuType {
            name: "X".into(),
            count: 0,
            latency: 1,
            reservation: ReservationTable::clean(1),
        }])
        .unwrap_err();
        assert_eq!(err, MachineError::NoUnits("X".into()));
    }

    #[test]
    fn unknown_class_detected() {
        let m = Machine::example_clean();
        let mut g = Ddg::new();
        g.add_node("z", OpClass::new(9), 1);
        assert_eq!(
            m.t_res(&g).unwrap_err(),
            MachineError::UnknownClass(OpClass::new(9))
        );
    }

    #[test]
    fn t_res_clean_counts_ops_per_unit() {
        // 2 FP ops on 2 clean FP units -> T_res 1.
        let m = Machine::example_clean();
        assert_eq!(m.t_res(&two_fp_ddg()).unwrap(), 1);
    }

    #[test]
    fn t_res_non_pipelined_scales_with_latency() {
        // 2 FP ops, non-pipelined lat 2, 2 units -> ceil(2*2/2) = 2.
        let m = Machine::example_non_pipelined();
        assert_eq!(m.t_res(&two_fp_ddg()).unwrap(), 2);
    }

    #[test]
    fn t_res_hazard_counts_busiest_stage() {
        // Hazard FP: stage 3 has 2 marks; 2 ops on 2 units ->
        // max(ceil(2*2/2), min_self_period=2) = 2.
        let m = Machine::example_pldi95();
        assert_eq!(m.t_res(&two_fp_ddg()).unwrap(), 2);
    }

    #[test]
    fn t_lower_bound_combines_dep_and_res() {
        let m = Machine::example_clean();
        let mut g = two_fp_ddg();
        // add a strong recurrence: self-loop lat 2 / dist 1 on node 0 -> T_dep 2.
        let ids: Vec<_> = g.node_ids().collect();
        g.add_edge(ids[0], ids[0], 1).unwrap();
        assert_eq!(m.t_lower_bound(&g).unwrap(), Some(2));
    }

    #[test]
    fn example_machines_are_consistent() {
        for m in [
            Machine::example_pldi95(),
            Machine::example_clean(),
            Machine::example_non_pipelined(),
            Machine::ppc604(),
        ] {
            for t in m.types() {
                assert!(t.count > 0);
                assert!(t.latency > 0);
                assert!(t.reservation.exec_time() > 0);
            }
        }
    }

    #[test]
    fn bad_bundles_rejected() {
        let zero_width = Machine::example_clean().with_bundle(BundleSpec::width(0));
        assert!(matches!(zero_width, Err(MachineError::BadBundle(_))));
        let out_of_range = Machine::example_clean().with_bundle(BundleSpec {
            width: 2,
            groups: vec![SlotGroup {
                name: "g".into(),
                cap: 1,
                classes: vec![7],
            }],
        });
        assert!(matches!(out_of_range, Err(MachineError::BadBundle(_))));
        let dup = Machine::example_clean().with_bundle(BundleSpec {
            width: 2,
            groups: vec![SlotGroup {
                name: "g".into(),
                cap: 1,
                classes: vec![0, 0],
            }],
        });
        assert!(matches!(dup, Err(MachineError::BadBundle(_))));
    }

    #[test]
    fn bundle_bound_tightens_t_res() {
        // 2 FP ops on 2 clean FP units is T_res 1 without a bundle;
        // a width-1 bundle forces one issue per cycle -> T_res 2.
        let m = Machine::example_clean()
            .with_bundle(BundleSpec::width(1))
            .unwrap();
        assert_eq!(m.bundle_bound(&two_fp_ddg()).unwrap(), 2);
        assert_eq!(m.t_res(&two_fp_ddg()).unwrap(), 2);
        assert_eq!(m.t_res_capacity(&two_fp_ddg()).unwrap(), 2);
    }

    #[test]
    fn slot_group_bound_counts_members() {
        // Group capping FP at 1/cycle: 2 FP ops -> T >= 2 even at width 4.
        let m = Machine::example_clean()
            .with_bundle(BundleSpec {
                width: 4,
                groups: vec![SlotGroup {
                    name: "fp".into(),
                    cap: 1,
                    classes: vec![1],
                }],
            })
            .unwrap();
        assert_eq!(m.bundle_bound(&two_fp_ddg()).unwrap(), 2);
    }

    #[test]
    fn ppc604_divide_is_slow_and_exclusive() {
        let m = Machine::ppc604();
        let fdiv = m.fu_type(OpClass::new(4)).unwrap();
        assert_eq!(fdiv.latency, 18);
        assert_eq!(fdiv.reservation.min_self_period(), 18);
    }
}
