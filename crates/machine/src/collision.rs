//! Collision vectors and initiation analysis (Kogge 1981, ch. 5).

use crate::restable::ReservationTable;

/// Static initiation analysis of one reservation table.
///
/// Derived quantities of classic pipeline theory:
///
/// * the **collision vector** `C = c_{d-1} … c_1` where `c_f = 1` iff
///   latency `f` is forbidden;
/// * the **MAL** (minimum achievable latency) over greedy/simple cycles,
///   bounded below by the maximum row-mark count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollisionInfo {
    forbidden: Vec<u32>,
    exec_time: u32,
    max_row_marks: u32,
    mal: u32,
}

impl CollisionInfo {
    /// Analyzes a reservation table.
    pub fn analyze(rt: &ReservationTable) -> Self {
        let forbidden = rt.forbidden_latencies();
        let mal = Self::compute_mal(rt, &forbidden);
        CollisionInfo {
            forbidden,
            exec_time: rt.exec_time(),
            max_row_marks: rt.max_row_marks(),
            mal,
        }
    }

    /// Forbidden latencies, ascending.
    pub fn forbidden_latencies(&self) -> &[u32] {
        &self.forbidden
    }

    /// Whether latency `f` collides.
    pub fn is_forbidden(&self, f: u32) -> bool {
        self.forbidden.binary_search(&f).is_ok()
    }

    /// Collision vector as a bitmask: bit `f-1` set iff `f` forbidden,
    /// for `f` in `1..exec_time`.
    pub fn collision_vector(&self) -> u64 {
        let mut v = 0u64;
        for &f in &self.forbidden {
            if (1..=64).contains(&f) {
                v |= 1 << (f - 1);
            }
        }
        v
    }

    /// Lower bound on MAL: maximum number of marks in any row.
    pub fn mal_lower_bound(&self) -> u32 {
        self.max_row_marks
    }

    /// Minimum achievable (average) latency over constant-latency cycles.
    ///
    /// For software pipelining with one instance of an operation per
    /// iteration, the schedule repeats every `T` cycles, so the relevant
    /// quantity is the smallest *constant* initiation interval — the
    /// smallest `p` such that no multiple-free collision occurs, i.e.
    /// the table is modulo-feasible at `p`.
    pub fn mal(&self) -> u32 {
        self.mal
    }

    fn compute_mal(rt: &ReservationTable, forbidden: &[u32]) -> u32 {
        // No forbidden latency means consecutive issues never collide,
        // so initiations can stream every cycle: MAL = 1. This covers
        // the single-marked-cell table (and every clean pipeline)
        // without consulting the modulo search, whose wraparound
        // residues would otherwise be the only signal.
        if forbidden.is_empty() {
            return 1;
        }
        rt.min_self_period()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_pipeline_no_collisions() {
        let info = CollisionInfo::analyze(&ReservationTable::clean(4));
        assert!(info.forbidden_latencies().is_empty());
        assert_eq!(info.collision_vector(), 0);
        assert_eq!(info.mal(), 1);
    }

    #[test]
    fn non_pipelined_all_short_latencies_forbidden() {
        let info = CollisionInfo::analyze(&ReservationTable::non_pipelined(4));
        assert_eq!(info.forbidden_latencies(), &[1, 2, 3]);
        assert_eq!(info.collision_vector(), 0b111);
        assert_eq!(info.mal(), 4);
        assert!(info.is_forbidden(2));
        assert!(!info.is_forbidden(4));
    }

    #[test]
    fn single_marked_cell_reports_mal_one() {
        // The degenerate table — one stage, one mark at issue — has no
        // forbidden latency at all, so back-to-back initiation is legal
        // and MAL must be exactly 1.
        let rt = ReservationTable::from_rows(&[&[true]]).expect("well formed");
        let info = CollisionInfo::analyze(&rt);
        assert!(info.forbidden_latencies().is_empty());
        assert_eq!(info.mal(), 1);
        assert_eq!(info.mal_lower_bound(), 1);
    }

    #[test]
    fn offset_marked_single_use_stages_report_mal_one() {
        // Several stages, each used once: still collision-free, MAL 1.
        let rt = ReservationTable::from_rows(&[
            &[true, false, false],
            &[false, true, false],
            &[false, false, true],
        ])
        .expect("well formed");
        let info = CollisionInfo::analyze(&rt);
        assert!(info.forbidden_latencies().is_empty());
        assert_eq!(info.mal(), 1);
    }

    #[test]
    fn figure2_style_two_stage_hazard_table() {
        // The paper's Figure-2 shape: an issue stage at offset 0 and a
        // hazard stage used at two consecutive offsets {1, 2}. The
        // double-booked stage forbids latency 1; at period 2 its uses
        // land on residues {1, 0} — disjoint — so MAL = 2.
        let rt = ReservationTable::from_rows(&[&[true, false, false], &[false, true, true]])
            .expect("well formed");
        let info = CollisionInfo::analyze(&rt);
        assert_eq!(info.forbidden_latencies(), &[1]);
        assert_eq!(info.collision_vector(), 0b1);
        assert_eq!(info.mal_lower_bound(), 2);
        assert_eq!(info.mal(), 2);
    }

    #[test]
    fn kogge_example_table() {
        // Kogge's classic 3-stage example:
        //   stage 0: X . . . X
        //   stage 1: . X . X .
        //   stage 2: . . X . .
        // Forbidden: row 0 gives 4; row 1 gives 2. MAL lower bound 2.
        let rt = ReservationTable::from_rows(&[
            &[true, false, false, false, true],
            &[false, true, false, true, false],
            &[false, false, true, false, false],
        ])
        .expect("well formed");
        let info = CollisionInfo::analyze(&rt);
        assert_eq!(info.forbidden_latencies(), &[2, 4]);
        assert_eq!(info.mal_lower_bound(), 2);
        // Constant period 3: residues row0 {0, 1}, row1 {1, 0}, ok.
        assert_eq!(info.mal(), 3);
    }
}
