//! End-to-end daemon tests over real TCP on ephemeral ports.
//!
//! Each test starts its own daemon on `127.0.0.1:0`, so they are
//! parallel-safe and leave nothing behind.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use swp_fuzz::{gen_case, write_regression, GenConfig};
use swp_incr::EditOp;
use swp_swpd::{Daemon, DaemonConfig, Reply, ReplyStatus, Request, SolveRequest, SwpdClient};

fn guaranteed_case(seed: u64, i: usize) -> String {
    let cfg = GenConfig {
        seed,
        adversarial_fraction: 0.0,
        max_nodes: 5,
        ..GenConfig::default()
    };
    write_regression(&gen_case(&cfg, i), None)
}

fn adversarial_case(seed: u64, i: usize, max_nodes: usize) -> String {
    let cfg = GenConfig {
        seed,
        adversarial_fraction: 1.0,
        max_nodes,
        ..GenConfig::default()
    };
    write_regression(&gen_case(&cfg, i), None)
}

/// A case whose ILP solve (heuristic disabled) grinds for minutes —
/// 27 adversarial nodes on single-copy units. Pinned by measurement so
/// the cancellation tests have something real to interrupt.
fn slow_request(id: &str) -> SolveRequest {
    let cfg = GenConfig {
        seed: 0x510,
        adversarial_fraction: 1.0,
        max_nodes: 28,
        max_classes: 2,
        max_count: 1,
        max_latency: 6,
        max_distance: 2,
        ..GenConfig::default()
    };
    let mut r = SolveRequest::new(id, write_regression(&gen_case(&cfg, 1), None));
    r.heuristic = Some(false);
    r.max_t = Some(64);
    r.timeout_ms = Some(120_000);
    r
}

fn start(config: DaemonConfig) -> (swp_swpd::DaemonHandle, String) {
    let handle = Daemon::start(config).expect("daemon start");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn default_config() -> DaemonConfig {
    DaemonConfig {
        workers: 2,
        ..DaemonConfig::default()
    }
}

#[test]
fn ping_stats_and_counters() {
    let (handle, addr) = start(default_config());
    let mut client = SwpdClient::new(addr, 7);
    let pong = client.ping().expect("ping");
    assert_eq!(pong.status, ReplyStatus::Ok);
    let stats = client.stats().expect("stats");
    // ping + this stats request, both classified in the snapshot.
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.classified_total(), 2);
    assert!(!stats.draining);
    handle.shutdown();
}

#[test]
fn solve_then_cached_repeat() {
    let (handle, addr) = start(default_config());
    let mut client = SwpdClient::new(addr, 7);
    let req = SolveRequest::new("it-0", guaranteed_case(0x5EED, 0));

    let first = client.solve(&req).expect("solve");
    assert_eq!(first.status, ReplyStatus::Solved, "reply: {first:?}");
    assert!(first.period.is_some());
    assert_eq!(first.proven, Some(true));

    let second = client.solve(&req).expect("repeat");
    assert_eq!(second.status, ReplyStatus::Cached, "reply: {second:?}");
    assert_eq!(second.period, first.period);

    // Same DDG under a different id still hits: the key is the
    // fingerprint, not the request id.
    let renamed = SolveRequest::new("it-renamed", guaranteed_case(0x5EED, 0));
    let third = client.solve(&renamed).expect("renamed");
    assert_eq!(third.status, ReplyStatus::Cached);

    let stats = handle.stats();
    assert_eq!(stats.solved, 1);
    assert_eq!(stats.cached, 2);
    handle.shutdown();
}

#[test]
fn portfolio_engine_solves_and_reports_races() {
    let (handle, addr) = start(default_config());
    let mut client = SwpdClient::new(addr, 7);

    // Heuristic off so the exact engines settle every period — that is
    // what makes the portfolio actually race.
    let mut req = SolveRequest::new("race-0", guaranteed_case(0xCAFE, 0));
    req.heuristic = Some(false);
    req.engine = Some(swp_core::Engine::Portfolio);
    let reply = client.solve(&req).expect("portfolio solve");
    assert_eq!(reply.status, ReplyStatus::Solved, "reply: {reply:?}");
    assert_eq!(reply.proven, Some(true));
    let by = reply.solved_by.as_deref().expect("solved_by");
    assert!(by == "ilp" || by == "cp", "race winner was {by}");

    let stats = handle.stats();
    assert!(stats.races > 0, "portfolio solve ran no races");
    assert!(stats.race_cp_wins + stats.race_ilp_wins <= stats.races);

    // The engine is part of the cache fingerprint: the same case under
    // the default (ILP) engine is a fresh solve, not a cache hit.
    let mut ilp = SolveRequest::new("race-0-ilp", guaranteed_case(0xCAFE, 0));
    ilp.heuristic = Some(false);
    let reply = client.solve(&ilp).expect("ilp solve");
    assert_eq!(reply.status, ReplyStatus::Solved, "reply: {reply:?}");

    // A repeat of the portfolio request *is* a hit.
    let reply = client.solve(&req).expect("portfolio repeat");
    assert_eq!(reply.status, ReplyStatus::Cached, "reply: {reply:?}");
    handle.shutdown();
}

#[test]
fn unknown_engine_is_a_bad_request() {
    let (handle, addr) = start(default_config());
    let stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writer
        .write_all(
            b"{\"op\": \"solve\", \"id\": \"x\", \"case\": \"c\", \"engine\": \"quantum\"}\n",
        )
        .expect("write");
    writer.flush().expect("flush");
    let mut out = String::new();
    reader.read_line(&mut out).expect("read");
    let reply = Reply::from_json_line(out.trim()).expect("parse reply");
    assert_eq!(reply.status, ReplyStatus::BadRequest, "reply: {reply:?}");
    assert!(
        reply.error.as_deref().unwrap_or("").contains("quantum"),
        "error should name the bad engine: {reply:?}"
    );
    assert_eq!(handle.stats().bad_requests, 1);
    handle.shutdown();
}

#[test]
fn bad_requests_are_refused_not_fatal() {
    let (handle, addr) = start(default_config());

    // Malformed JSON, unknown op, and an unparseable case all come back
    // as bad_request on the same connection, which stays usable.
    let stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut ask = |line: &str| -> Reply {
        writer.write_all(line.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write nl");
        writer.flush().expect("flush");
        let mut out = String::new();
        reader.read_line(&mut out).expect("read");
        Reply::from_json_line(out.trim()).expect("parse reply")
    };

    assert_eq!(ask("this is not json").status, ReplyStatus::BadRequest);
    assert_eq!(
        ask(r#"{"op": "frobnicate", "id": "x"}"#).status,
        ReplyStatus::BadRequest
    );
    assert_eq!(
        ask(r#"{"op": "solve", "id": "x", "case": "garbage"}"#).status,
        ReplyStatus::BadRequest
    );
    // Fault injection without opt-in is a client error, not a panic.
    let mut inject = SolveRequest::new("x", guaranteed_case(1, 0));
    inject.inject_panic = true;
    let line = Request::Solve(inject).to_json_line();
    assert_eq!(ask(&line).status, ReplyStatus::BadRequest);
    // The connection is still healthy.
    assert_eq!(
        ask(r#"{"op": "ping", "id": "still-alive"}"#).status,
        ReplyStatus::Ok
    );

    let stats = handle.stats();
    assert_eq!(stats.bad_requests, 4);
    assert_eq!(stats.panics, 0);
    handle.shutdown();
}

#[test]
fn http_front_door() {
    let (handle, addr) = start(default_config());

    let http = |request: String| -> (u32, String) {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        stream.write_all(request.as_bytes()).expect("write");
        stream.flush().expect("flush");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let code: u32 = response
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .expect("status code");
        let body = response
            .split("\r\n\r\n")
            .nth(1)
            .unwrap_or("")
            .trim()
            .to_string();
        (code, body)
    };

    let (code, _) = http("GET /health HTTP/1.1\r\nhost: x\r\n\r\n".to_string());
    assert_eq!(code, 200);

    let (code, body) = http("GET /stats HTTP/1.1\r\nhost: x\r\n\r\n".to_string());
    assert_eq!(code, 200);
    let stats_reply = Reply::from_json_line(&body).expect("stats body");
    let counters = stats_reply.counters.expect("counters");
    assert_eq!(counters.requests, counters.classified_total());

    // POST /solve with a bare JSON body (no `op`): solves and returns
    // 200 with the reply object.
    let solve = SolveRequest::new("http-0", guaranteed_case(0x177, 0));
    let body_line = Request::Solve(solve).to_json_line();
    let (code, body) = http(format!(
        "POST /solve HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n\r\n{body_line}",
        body_line.len()
    ));
    assert_eq!(code, 200, "body: {body}");
    let reply = Reply::from_json_line(&body).expect("solve body");
    assert_eq!(reply.status, ReplyStatus::Solved);

    let (code, _) = http("GET /nowhere HTTP/1.1\r\nhost: x\r\n\r\n".to_string());
    assert_eq!(code, 400);

    handle.shutdown();
}

#[test]
fn zero_capacity_queue_sheds_with_retry_hint() {
    let (handle, addr) = start(DaemonConfig {
        workers: 1,
        queue_capacity: 0,
        ..DaemonConfig::default()
    });
    let mut client = SwpdClient::new(addr, 7);
    client.max_retries = 2;
    client.fallback_backoff_ms = 1;

    let req = SolveRequest::new("shed-0", guaranteed_case(0x0bad, 0));
    let reply = client.solve(&req).expect("solve");
    assert_eq!(reply.status, ReplyStatus::Overloaded, "reply: {reply:?}");
    assert!(reply.retry_after_ms.is_some(), "hint missing: {reply:?}");

    // Every attempt (first + 2 retries) was counted and shed.
    let stats = handle.stats();
    assert_eq!(stats.overloaded, 3);
    assert_eq!(stats.requests, 3);
    handle.shutdown();
}

#[test]
fn injected_panic_is_isolated() {
    let (handle, addr) = start(DaemonConfig {
        workers: 2,
        allow_fault_injection: true,
        ..DaemonConfig::default()
    });
    let mut client = SwpdClient::new(addr, 7);

    let mut boom = SolveRequest::new("boom-0", guaranteed_case(0xB00, 0));
    boom.inject_panic = true;
    let reply = client.solve(&boom).expect("solve");
    assert_eq!(reply.status, ReplyStatus::InternalPanic, "reply: {reply:?}");
    assert!(reply.error.unwrap_or_default().contains("injected fault"));

    // The daemon took the hit on one request only: the pool still
    // serves, and the poisoned fingerprint was never cached.
    let ok = client
        .solve(&SolveRequest::new("after-0", guaranteed_case(0xB00, 1)))
        .expect("solve after panic");
    assert_eq!(ok.status, ReplyStatus::Solved);
    let retry = client
        .solve(&SolveRequest::new("boom-retry", guaranteed_case(0xB00, 0)))
        .expect("clean retry of the panicked fingerprint");
    assert_eq!(retry.status, ReplyStatus::Solved);

    let stats = handle.stats();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.solved, 2);
    assert_eq!(stats.internal_errors, 0);
    handle.shutdown();
}

#[test]
fn starved_budget_reports_exhaustion() {
    let (handle, addr) = start(default_config());
    let mut client = SwpdClient::new(addr, 7);

    let mut req = SolveRequest::new("starved-0", adversarial_case(0x7167, 0, 8));
    req.ticks = Some(1);
    req.timeout_ms = Some(0);
    req.heuristic = Some(false);
    let reply = client.solve(&req).expect("solve");
    assert_eq!(
        reply.status,
        ReplyStatus::BudgetExhausted,
        "reply: {reply:?}"
    );
    // Exhausted answers are not deterministic; they must not be cached.
    let again = client.solve(&req).expect("repeat");
    assert_eq!(again.status, ReplyStatus::BudgetExhausted);
    assert_eq!(handle.stats().cached, 0);
    handle.shutdown();
}

#[test]
fn admission_pool_refuses_when_dry() {
    let (handle, addr) = start(DaemonConfig {
        workers: 2,
        // Too small to fund even one worker share after try_slice.
        admission_ticks: Some(1),
        ..DaemonConfig::default()
    });
    let mut client = SwpdClient::new(addr, 7);
    let reply = client
        .solve(&SolveRequest::new("dry-0", guaranteed_case(0xD5, 0)))
        .expect("solve");
    assert_eq!(
        reply.status,
        ReplyStatus::BudgetExhausted,
        "reply: {reply:?}"
    );
    assert!(reply.error.unwrap_or_default().contains("admission pool"));
    handle.shutdown();
}

#[test]
fn drain_then_restart_replays_artifact() {
    let artifact =
        std::env::temp_dir().join(format!("swpd-test-replay-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&artifact);

    let (handle, addr) = start(DaemonConfig {
        workers: 2,
        artifact: Some(artifact.clone()),
        ..DaemonConfig::default()
    });
    let mut client = SwpdClient::new(addr, 7);
    let reqs: Vec<SolveRequest> = (0..3)
        .map(|i| SolveRequest::new(format!("warm-{i}"), guaranteed_case(0x4E57, i)))
        .collect();
    let mut solved = 0;
    for r in &reqs {
        let reply = client.solve(r).expect("solve");
        if reply.status == ReplyStatus::Solved {
            solved += 1;
        }
    }
    assert!(solved > 0, "mix produced no proven solves");

    // Remote-initiated drain: the daemon latches `draining` and the
    // handle's join returns.
    let bye = client.shutdown().expect("shutdown request");
    assert_eq!(bye.status, ReplyStatus::Ok);
    let final_stats = handle.wait();
    assert!(final_stats.draining);
    assert_eq!(final_stats.in_flight, 0);
    assert_eq!(final_stats.queue_depth, 0);

    // Crash-only recovery: a new daemon over the same artifact serves
    // every solved fingerprint warm.
    let (handle2, addr2) = start(DaemonConfig {
        workers: 2,
        artifact: Some(artifact.clone()),
        resume: true,
        ..DaemonConfig::default()
    });
    assert_eq!(handle2.stats().replayed, solved);
    let mut client2 = SwpdClient::new(addr2, 8);
    for r in &reqs {
        let reply = client2.solve(r).expect("replay solve");
        assert_eq!(reply.status, ReplyStatus::Cached, "id {}: {reply:?}", r.id);
    }
    handle2.shutdown();
    let _ = std::fs::remove_file(&artifact);
}

#[test]
fn hard_drain_cancels_stuck_solves() {
    let (handle, addr) = start(DaemonConfig {
        workers: 1,
        drain_grace: Duration::from_millis(0),
        default_timeout_ms: 120_000,
        ..DaemonConfig::default()
    });

    // Park a heavyweight solve on the single worker.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let line = Request::Solve(slow_request("slow-0")).to_json_line();
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write nl");
    stream.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(200));

    // With zero grace the drain must hard-cancel it almost instantly;
    // if the token were not wired through, this join would sit for the
    // full two-minute deadline.
    let started = Instant::now();
    let stats = handle.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "drain took {:?} — hard-cancel did not fire",
        started.elapsed()
    );
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.queue_depth, 0);

    // The parked request was classified (cancelled), not lost.
    let mut reply_line = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    BufReader::new(stream)
        .read_line(&mut reply_line)
        .expect("read reply");
    let reply = Reply::from_json_line(reply_line.trim()).expect("parse");
    assert_eq!(reply.id, "slow-0");
    assert!(
        matches!(
            reply.status,
            ReplyStatus::Cancelled | ReplyStatus::BudgetExhausted | ReplyStatus::Unscheduled
        ),
        "unexpected terminal status: {reply:?}"
    );
}

#[test]
fn disconnect_cancels_in_flight_solve() {
    let (handle, addr) = start(DaemonConfig {
        workers: 1,
        default_timeout_ms: 120_000,
        ..DaemonConfig::default()
    });

    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let line = Request::Solve(slow_request("gone-0")).to_json_line();
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write nl");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(200));
        // Hang up mid-solve.
    }

    // The EOF fires the request's cancel token; the worker must free up
    // long before the two-minute deadline. Prove it by getting a fresh
    // solve through the single worker promptly.
    let started = Instant::now();
    let mut client = SwpdClient::new(addr, 9);
    client.read_timeout = Some(Duration::from_secs(60));
    let reply = client
        .solve(&SolveRequest::new("after-gone", guaranteed_case(0x90E, 1)))
        .expect("solve after disconnect");
    assert_eq!(reply.status, ReplyStatus::Solved);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "worker stayed wedged {:?} after client disconnect",
        started.elapsed()
    );
    handle.shutdown();
}

#[test]
fn session_lifecycle_edit_solve_replay_and_telemetry() {
    let (handle, addr) = start(default_config());
    let mut client = SwpdClient::new(addr, 31);
    let before = client.stats().expect("stats");

    let opened = client
        .session_open("sess-0", &guaranteed_case(0x5E55, 2))
        .expect("open");
    assert_eq!(opened.status, ReplyStatus::Ok, "{:?}", opened.error);
    let sid = opened.session.expect("session handle");
    let nodes = opened.nodes.expect("node count");

    let first = client.session_solve(sid).expect("solve");
    assert_eq!(first.status, ReplyStatus::Solved, "{:?}", first.error);
    let first_period = first.period.expect("period");

    if nodes >= 2 {
        let edit = EditOp::AddEdge {
            src: 0,
            dst: nodes as usize - 1,
            distance: 1,
        };
        let edited = client.session_edit(sid, edit.clone()).expect("edit");
        assert_eq!(edited.status, ReplyStatus::Ok, "{:?}", edited.error);
        assert!(edited.cone.is_some());
        let second = client.session_solve(sid).expect("solve 2");
        assert_eq!(second.status, ReplyStatus::Solved, "{:?}", second.error);

        // Reverting the edit restores the fingerprint: the third solve
        // replays the first answer.
        let reverted = client
            .session_edit(
                sid,
                EditOp::RemoveEdge {
                    src: 0,
                    dst: nodes as usize - 1,
                    distance: 1,
                },
            )
            .expect("revert");
        assert_eq!(reverted.status, ReplyStatus::Ok);
        let third = client.session_solve(sid).expect("solve 3");
        assert_eq!(third.status, ReplyStatus::Solved);
        assert_eq!(
            third.period,
            Some(first_period),
            "replay changed the answer"
        );
    }

    let closed = client.session_close(sid).expect("close");
    assert_eq!(closed.status, ReplyStatus::Ok);
    let gone = client.session_solve(sid).expect("solve after close");
    assert_eq!(gone.status, ReplyStatus::BadRequest);

    let after = client.stats().expect("stats");
    assert_eq!(after.monotone_regression_from(&before), None);
    assert_eq!(after.sessions_opened, before.sessions_opened + 1);
    assert!(after.session_solves >= before.session_solves + 2);
    if nodes >= 2 {
        assert_eq!(after.session_edits, before.session_edits + 2);
        assert!(
            after.reuse_replays > before.reuse_replays,
            "revert solve must be an exact replay"
        );
    }
    handle.shutdown();
}

#[test]
fn session_http_round_trip() {
    let (handle, addr) = start(default_config());
    let http = |request: String| -> (u32, String) {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        stream.write_all(request.as_bytes()).expect("write");
        stream.flush().expect("flush");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let code: u32 = response
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .expect("status code");
        let body = response
            .split("\r\n\r\n")
            .nth(1)
            .unwrap_or("")
            .trim()
            .to_string();
        (code, body)
    };
    let post = |path: &str, body: String| -> (u32, String) {
        http(format!(
            "POST {path} HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ))
    };

    let open_body = Request::SessionOpen {
        id: "h-open".into(),
        case: guaranteed_case(0x177E, 3),
    }
    .to_json_line();
    let (code, body) = post("/session", open_body);
    assert_eq!(code, 200, "body: {body}");
    let opened = Reply::from_json_line(&body).expect("open reply");
    assert_eq!(opened.status, ReplyStatus::Ok);
    let sid = opened.session.expect("handle");
    let nodes = opened.nodes.expect("nodes");

    // Solve with an empty body: the path carries op and session.
    let (code, body) = post(&format!("/session/{sid}/solve"), String::new());
    assert_eq!(code, 200, "body: {body}");
    let solved = Reply::from_json_line(&body).expect("solve reply");
    assert_eq!(solved.status, ReplyStatus::Solved, "{:?}", solved.error);
    assert!(solved.period.is_some());

    // Edit: add a node, then re-solve.
    let (code, body) = post(
        &format!("/session/{sid}/edit"),
        format!(r#"{{"id":"h-edit","edit":"add_node","name":"x","class":0,"latency":1}}"#),
    );
    assert_eq!(code, 200, "body: {body}");
    let edited = Reply::from_json_line(&body).expect("edit reply");
    assert_eq!(edited.status, ReplyStatus::Ok, "{:?}", edited.error);
    assert_eq!(edited.nodes, Some(nodes + 1));

    let (code, body) = post(&format!("/session/{sid}/solve"), String::new());
    assert_eq!(code, 200, "body: {body}");
    let second = Reply::from_json_line(&body).expect("second solve");
    assert_eq!(second.status, ReplyStatus::Solved, "{:?}", second.error);

    let (code, _) = post(&format!("/session/{sid}/close"), String::new());
    assert_eq!(code, 200);
    let (code, _) = post(&format!("/session/{sid}/warp"), String::new());
    assert_eq!(code, 400);
    let (code, _) = post("/session/notanumber/solve", String::new());
    assert_eq!(code, 400);

    handle.shutdown();
}

#[test]
fn session_capacity_sheds_and_frees_on_close() {
    let (handle, addr) = start(DaemonConfig {
        session_capacity: 1,
        ..default_config()
    });
    let mut client = SwpdClient::new(addr, 77);
    let first = client
        .session_open("cap-0", &guaranteed_case(0xCA9, 0))
        .expect("open");
    assert_eq!(first.status, ReplyStatus::Ok);
    let refused = client
        .session_open("cap-1", &guaranteed_case(0xCA9, 1))
        .expect("open refused");
    assert_eq!(refused.status, ReplyStatus::Overloaded);
    assert!(refused.retry_after_ms.is_some());

    client
        .session_close(first.session.expect("handle"))
        .expect("close");
    let reopened = client
        .session_open("cap-2", &guaranteed_case(0xCA9, 2))
        .expect("open again");
    assert_eq!(reopened.status, ReplyStatus::Ok);
    handle.shutdown();
}
