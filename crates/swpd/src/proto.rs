//! The wire protocol: one flat JSON object per message.
//!
//! Both transports carry the same objects — as one newline-delimited
//! line per message in raw-TCP mode, or as an HTTP request/response body
//! in HTTP mode. The encoding is the harness's dependency-free flat-JSON
//! subset ([`swp_harness::json`]): scalars only, no nesting, which is
//! why the scheduling problem itself travels as *one string field*
//! (`case`) in the `swp-fuzz` regression-file format — a self-contained
//! textual machine + DDG that [`swp_fuzz::parse_regression`] already
//! knows how to read and validate.
//!
//! A request is `{"v":1,"op":...,"id":...}` plus op-specific fields; a
//! reply is `{"v":1,"id":...,"status":...}` plus whatever the status
//! warrants. Unknown request fields are ignored (forward compatibility);
//! a missing or mistyped required field is a `bad_request`, never a
//! dropped connection.

use crate::stats::StatsSnapshot;
use std::collections::BTreeMap;
use swp_core::{ConflictOracleMode, Engine};
use swp_harness::json::{parse_object, JsonValue, ObjectWriter};
use swp_incr::EditOp;

/// Protocol schema version stamped into every message.
pub const PROTO_VERSION: u64 = 1;

/// How a request was answered. The daemon classifies **every** accepted
/// request as exactly one of these; the load generator's accounting
/// invariant (`requests == sum of per-status counters` at idle) depends
/// on the classification being total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplyStatus {
    /// Non-solve request (ping, stats, shutdown) acknowledged.
    Ok,
    /// Solved fresh, optimality proven; the result is now cached.
    Solved,
    /// Served from the fingerprint-keyed result cache.
    Cached,
    /// Every period in range was refuted exactly — provably no schedule
    /// (deterministic, so also cached).
    Unscheduled,
    /// The per-request budget (deadline, ticks, or the global admission
    /// pool) ran out; any `period` carried is best-effort, not proven.
    BudgetExhausted,
    /// Load-shed at admission: queue full, pool drained, or draining.
    /// Carries `retry_after_ms`.
    Overloaded,
    /// The client disconnected (or drain hard-cancelled) mid-solve.
    Cancelled,
    /// The solve panicked; the panic was caught and isolated.
    InternalPanic,
    /// Malformed request: bad JSON, unknown op, unparseable case text,
    /// or fault injection without the daemon opt-in.
    BadRequest,
    /// A structural solver failure that is neither a panic nor a budget
    /// trip (numerical failure, verification gap). Expected to be ~0.
    InternalError,
}

impl ReplyStatus {
    /// The wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            ReplyStatus::Ok => "ok",
            ReplyStatus::Solved => "solved",
            ReplyStatus::Cached => "cached",
            ReplyStatus::Unscheduled => "unscheduled",
            ReplyStatus::BudgetExhausted => "budget_exhausted",
            ReplyStatus::Overloaded => "overloaded",
            ReplyStatus::Cancelled => "cancelled",
            ReplyStatus::InternalPanic => "internal_panic",
            ReplyStatus::BadRequest => "bad_request",
            ReplyStatus::InternalError => "internal_error",
        }
    }

    /// Parses a wire label.
    pub fn parse(s: &str) -> Option<ReplyStatus> {
        Some(match s {
            "ok" => ReplyStatus::Ok,
            "solved" => ReplyStatus::Solved,
            "cached" => ReplyStatus::Cached,
            "unscheduled" => ReplyStatus::Unscheduled,
            "budget_exhausted" => ReplyStatus::BudgetExhausted,
            "overloaded" => ReplyStatus::Overloaded,
            "cancelled" => ReplyStatus::Cancelled,
            "internal_panic" => ReplyStatus::InternalPanic,
            "bad_request" => ReplyStatus::BadRequest,
            "internal_error" => ReplyStatus::InternalError,
            _ => return None,
        })
    }

    /// The HTTP status code this maps to in HTTP mode.
    pub fn http_code(self) -> u32 {
        match self {
            ReplyStatus::Ok
            | ReplyStatus::Solved
            | ReplyStatus::Cached
            | ReplyStatus::Unscheduled
            | ReplyStatus::BudgetExhausted => 200,
            ReplyStatus::Overloaded => 429,
            ReplyStatus::BadRequest => 400,
            ReplyStatus::Cancelled => 499,
            ReplyStatus::InternalPanic | ReplyStatus::InternalError => 500,
        }
    }
}

/// A schedule request.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Client-chosen correlation id, echoed verbatim in the reply.
    pub id: String,
    /// The problem, in the `swp-fuzz` regression-file format (machine
    /// block + ddg block).
    pub case: String,
    /// Client deadline; propagated into the solve budget (clamped to
    /// the daemon's `max_timeout_ms`).
    pub timeout_ms: Option<u64>,
    /// Deterministic tick cap for this solve.
    pub ticks: Option<u64>,
    /// Stop the period search at `T_lb + max_t` (default 8, as the
    /// corpus harness).
    pub max_t: Option<u32>,
    /// Let IMS certify feasible periods (default true).
    pub heuristic: Option<bool>,
    /// Conflict-query engine (`"scan"` or `"automaton"`).
    pub oracle: Option<ConflictOracleMode>,
    /// Exact engine (`"ilp"`, `"cp"`, or `"portfolio"`); default ILP.
    pub engine: Option<Engine>,
    /// Test-only: make the solve panic (requires the daemon to run with
    /// fault injection enabled; otherwise `bad_request`).
    pub inject_panic: bool,
}

impl SolveRequest {
    /// A minimal solve request for `case` with every knob at its default.
    pub fn new(id: impl Into<String>, case: impl Into<String>) -> SolveRequest {
        SolveRequest {
            id: id.into(),
            case: case.into(),
            timeout_ms: None,
            ticks: None,
            max_t: None,
            heuristic: None,
            oracle: None,
            engine: None,
            inject_panic: false,
        }
    }
}

/// A parsed request message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Solve a scheduling problem.
    Solve(SolveRequest),
    /// Liveness probe.
    Ping {
        /// Correlation id.
        id: String,
    },
    /// Telemetry snapshot.
    Stats {
        /// Correlation id.
        id: String,
    },
    /// Begin a graceful drain.
    Shutdown {
        /// Correlation id.
        id: String,
    },
    /// Open an incremental solve session for a case.
    SessionOpen {
        /// Correlation id.
        id: String,
        /// The problem, in the `swp-fuzz` regression-file format.
        case: String,
    },
    /// Apply one DDG edit to an open session.
    SessionEdit {
        /// Correlation id.
        id: String,
        /// Session handle from `session_open`.
        session: u64,
        /// The edit to apply.
        edit: EditOp,
    },
    /// Solve an open session's current instance (warm by default).
    SessionSolve {
        /// Correlation id.
        id: String,
        /// Session handle from `session_open`.
        session: u64,
        /// Deterministic tick cap for this solve.
        ticks: Option<u64>,
        /// Client deadline (clamped to the daemon's `max_timeout_ms`).
        timeout_ms: Option<u64>,
    },
    /// Close a session and free its slot.
    SessionClose {
        /// Correlation id.
        id: String,
        /// Session handle from `session_open`.
        session: u64,
    },
}

impl Request {
    /// The correlation id of any request variant.
    pub fn id(&self) -> &str {
        match self {
            Request::Solve(r) => &r.id,
            Request::Ping { id }
            | Request::Stats { id }
            | Request::Shutdown { id }
            | Request::SessionOpen { id, .. }
            | Request::SessionEdit { id, .. }
            | Request::SessionSolve { id, .. }
            | Request::SessionClose { id, .. } => id,
        }
    }

    /// Serializes the request as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = ObjectWriter::new();
        w.u64("v", PROTO_VERSION);
        match self {
            Request::Ping { id } => {
                w.str("op", "ping").str("id", id);
            }
            Request::Stats { id } => {
                w.str("op", "stats").str("id", id);
            }
            Request::Shutdown { id } => {
                w.str("op", "shutdown").str("id", id);
            }
            Request::SessionOpen { id, case } => {
                w.str("op", "session_open").str("id", id).str("case", case);
            }
            Request::SessionEdit { id, session, edit } => {
                w.str("op", "session_edit")
                    .str("id", id)
                    .u64("session", *session);
                match edit {
                    EditOp::AddNode {
                        name,
                        class,
                        latency,
                    } => {
                        w.str("edit", "add_node")
                            .str("name", name)
                            .u64("class", *class as u64)
                            .u64("latency", u64::from(*latency));
                    }
                    EditOp::RemoveNode { index } => {
                        w.str("edit", "remove_node").u64("index", *index as u64);
                    }
                    EditOp::AddEdge { src, dst, distance } => {
                        w.str("edit", "add_edge")
                            .u64("src", *src as u64)
                            .u64("dst", *dst as u64)
                            .u64("distance", u64::from(*distance));
                    }
                    EditOp::RemoveEdge { src, dst, distance } => {
                        w.str("edit", "remove_edge")
                            .u64("src", *src as u64)
                            .u64("dst", *dst as u64)
                            .u64("distance", u64::from(*distance));
                    }
                }
            }
            Request::SessionSolve {
                id,
                session,
                ticks,
                timeout_ms,
            } => {
                w.str("op", "session_solve")
                    .str("id", id)
                    .u64("session", *session);
                if let Some(t) = ticks {
                    w.u64("ticks", *t);
                }
                if let Some(ms) = timeout_ms {
                    w.u64("timeout_ms", *ms);
                }
            }
            Request::SessionClose { id, session } => {
                w.str("op", "session_close")
                    .str("id", id)
                    .u64("session", *session);
            }
            Request::Solve(r) => {
                w.str("op", "solve").str("id", &r.id).str("case", &r.case);
                if let Some(ms) = r.timeout_ms {
                    w.u64("timeout_ms", ms);
                }
                if let Some(t) = r.ticks {
                    w.u64("ticks", t);
                }
                if let Some(m) = r.max_t {
                    w.u64("max_t", u64::from(m));
                }
                if let Some(h) = r.heuristic {
                    w.bool("heuristic", h);
                }
                if let Some(o) = r.oracle {
                    w.str("oracle", oracle_str(o));
                }
                if let Some(e) = r.engine {
                    w.str("engine", engine_str(e));
                }
                if r.inject_panic {
                    w.bool("panic", true);
                }
            }
        }
        w.finish()
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A description of what is malformed; the daemon downgrades this to
    /// a `bad_request` reply.
    pub fn from_json_line(line: &str) -> Result<Request, String> {
        Request::from_json_line_with(line, "solve", None)
    }

    /// Parses one request line with an HTTP-route-supplied default `op`
    /// and session handle (the body of `POST /session/{id}/edit` does
    /// not repeat what the path already says).
    ///
    /// # Errors
    ///
    /// A description of what is malformed.
    pub fn from_json_line_with(
        line: &str,
        default_op: &str,
        session: Option<u64>,
    ) -> Result<Request, String> {
        let m = parse_object(line)?;
        let id = opt_str(&m, "id").unwrap_or_default();
        // An HTTP body may omit `op`; the route decides the default.
        let op = opt_str(&m, "op").unwrap_or_else(|| default_op.to_string());
        let need_session = || {
            session
                .or_else(|| opt_u64(&m, "session"))
                .ok_or_else(|| format!("{op} request needs `session`"))
        };
        match op.as_str() {
            "ping" => Ok(Request::Ping { id }),
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "session_open" => {
                let case = opt_str(&m, "case").ok_or("session_open request needs `case`")?;
                Ok(Request::SessionOpen { id, case })
            }
            "session_edit" => {
                let session = need_session()?;
                let kind = opt_str(&m, "edit").ok_or("session_edit request needs `edit`")?;
                let need = |k: &str| {
                    opt_u64(&m, k).ok_or_else(|| format!("edit `{kind}` needs numeric `{k}`"))
                };
                let edit = match kind.as_str() {
                    "add_node" => EditOp::AddNode {
                        name: opt_str(&m, "name").unwrap_or_else(|| "added".to_string()),
                        class: need("class")? as usize,
                        latency: need("latency")? as u32,
                    },
                    "remove_node" => EditOp::RemoveNode {
                        index: need("index")? as usize,
                    },
                    "add_edge" => EditOp::AddEdge {
                        src: need("src")? as usize,
                        dst: need("dst")? as usize,
                        distance: need("distance")? as u32,
                    },
                    "remove_edge" => EditOp::RemoveEdge {
                        src: need("src")? as usize,
                        dst: need("dst")? as usize,
                        distance: need("distance")? as u32,
                    },
                    other => return Err(format!("unknown edit `{other}`")),
                };
                Ok(Request::SessionEdit { id, session, edit })
            }
            "session_solve" => Ok(Request::SessionSolve {
                id,
                session: need_session()?,
                ticks: opt_u64(&m, "ticks"),
                timeout_ms: opt_u64(&m, "timeout_ms"),
            }),
            "session_close" => Ok(Request::SessionClose {
                id,
                session: need_session()?,
            }),
            "solve" => {
                let case = opt_str(&m, "case").ok_or("solve request needs `case`")?;
                let oracle = match m.get("oracle").and_then(JsonValue::as_str) {
                    None => None,
                    Some("scan") => Some(ConflictOracleMode::Scan),
                    Some("automaton") => Some(ConflictOracleMode::Automaton),
                    Some(other) => return Err(format!("unknown oracle `{other}`")),
                };
                let engine = match m.get("engine").and_then(JsonValue::as_str) {
                    None => None,
                    Some("ilp") => Some(Engine::Ilp),
                    Some("cp") => Some(Engine::Cp),
                    Some("portfolio") => Some(Engine::Portfolio),
                    Some(other) => return Err(format!("unknown engine `{other}`")),
                };
                Ok(Request::Solve(SolveRequest {
                    id,
                    case,
                    timeout_ms: opt_u64(&m, "timeout_ms"),
                    ticks: opt_u64(&m, "ticks"),
                    max_t: opt_u64(&m, "max_t").map(|v| v as u32),
                    heuristic: m.get("heuristic").and_then(JsonValue::as_bool),
                    oracle,
                    engine,
                    inject_panic: m.get("panic").and_then(JsonValue::as_bool).unwrap_or(false),
                }))
            }
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

fn oracle_str(o: ConflictOracleMode) -> &'static str {
    match o {
        ConflictOracleMode::Scan => "scan",
        ConflictOracleMode::Automaton => "automaton",
    }
}

fn engine_str(e: Engine) -> &'static str {
    match e {
        Engine::Ilp => "ilp",
        Engine::Cp => "cp",
        Engine::Portfolio => "portfolio",
    }
}

/// A reply message. Fields beyond `id` and `status` are populated as the
/// status warrants; absent fields are omitted from the wire form.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Correlation id, echoed from the request (empty when the request
    /// was too malformed to carry one).
    pub id: String,
    /// The classification.
    pub status: ReplyStatus,
    /// Achieved initiation interval.
    pub period: Option<u32>,
    /// Lower bound `T_lb`.
    pub t_lb: Option<u32>,
    /// `period − T_lb`.
    pub slack: Option<u32>,
    /// Whether every smaller period was refuted exactly.
    pub proven: Option<bool>,
    /// Engine that produced the schedule (`"ilp"` / `"heuristic"`).
    pub solved_by: Option<String>,
    /// Budget ticks the solve consumed.
    pub ticks: Option<u64>,
    /// On-thread solve time, microseconds.
    pub solve_us: Option<u64>,
    /// Session handle (`session_open` replies, echoed on session ops).
    pub session: Option<u64>,
    /// Live instruction count after a session op.
    pub nodes: Option<u64>,
    /// Live dependence-edge count after a session op.
    pub edges: Option<u64>,
    /// Nodes in the dependency cone the last edit invalidated.
    pub cone: Option<u64>,
    /// Backoff hint on `overloaded` replies.
    pub retry_after_ms: Option<u64>,
    /// Human-readable detail on error-ish statuses.
    pub error: Option<String>,
    /// Telemetry counters (stats replies only).
    pub counters: Option<StatsSnapshot>,
}

impl Reply {
    /// A bare reply with just a status.
    pub fn status(id: impl Into<String>, status: ReplyStatus) -> Reply {
        Reply {
            id: id.into(),
            status,
            period: None,
            t_lb: None,
            slack: None,
            proven: None,
            solved_by: None,
            ticks: None,
            solve_us: None,
            session: None,
            nodes: None,
            edges: None,
            cone: None,
            retry_after_ms: None,
            error: None,
            counters: None,
        }
    }

    /// A bare reply plus an error detail.
    pub fn error(id: impl Into<String>, status: ReplyStatus, why: impl Into<String>) -> Reply {
        let mut r = Reply::status(id, status);
        r.error = Some(why.into());
        r
    }

    /// Serializes the reply as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = ObjectWriter::new();
        w.u64("v", PROTO_VERSION)
            .str("id", &self.id)
            .str("status", self.status.as_str());
        if let Some(p) = self.period {
            w.u64("period", u64::from(p));
        }
        if let Some(t) = self.t_lb {
            w.u64("t_lb", u64::from(t));
        }
        if let Some(s) = self.slack {
            w.u64("slack", u64::from(s));
        }
        if let Some(p) = self.proven {
            w.bool("proven", p);
        }
        if let Some(e) = &self.solved_by {
            w.str("solved_by", e);
        }
        if let Some(t) = self.ticks {
            w.u64("ticks", t);
        }
        if let Some(t) = self.solve_us {
            w.u64("solve_us", t);
        }
        if let Some(s) = self.session {
            w.u64("session", s);
        }
        if let Some(n) = self.nodes {
            w.u64("nodes", n);
        }
        if let Some(n) = self.edges {
            w.u64("edges", n);
        }
        if let Some(c) = self.cone {
            w.u64("cone", c);
        }
        if let Some(r) = self.retry_after_ms {
            w.u64("retry_after_ms", r);
        }
        if let Some(e) = &self.error {
            w.str("error", e);
        }
        if let Some(c) = &self.counters {
            c.write_fields(&mut w);
        }
        w.finish()
    }

    /// Parses one reply line.
    ///
    /// # Errors
    ///
    /// A description of what is malformed.
    pub fn from_json_line(line: &str) -> Result<Reply, String> {
        let m = parse_object(line)?;
        let status_raw = opt_str(&m, "status").ok_or("reply needs `status`")?;
        let status = ReplyStatus::parse(&status_raw)
            .ok_or_else(|| format!("unknown status `{status_raw}`"))?;
        Ok(Reply {
            id: opt_str(&m, "id").unwrap_or_default(),
            status,
            period: opt_u64(&m, "period").map(|v| v as u32),
            t_lb: opt_u64(&m, "t_lb").map(|v| v as u32),
            slack: opt_u64(&m, "slack").map(|v| v as u32),
            proven: m.get("proven").and_then(JsonValue::as_bool),
            solved_by: opt_str(&m, "solved_by"),
            ticks: opt_u64(&m, "ticks"),
            solve_us: opt_u64(&m, "solve_us"),
            session: opt_u64(&m, "session"),
            nodes: opt_u64(&m, "nodes"),
            edges: opt_u64(&m, "edges"),
            cone: opt_u64(&m, "cone"),
            retry_after_ms: opt_u64(&m, "retry_after_ms"),
            error: opt_str(&m, "error"),
            counters: StatsSnapshot::from_fields(&m),
        })
    }
}

fn opt_str(m: &BTreeMap<String, JsonValue>, k: &str) -> Option<String> {
    m.get(k).and_then(JsonValue::as_str).map(str::to_string)
}

fn opt_u64(m: &BTreeMap<String, JsonValue>, k: &str) -> Option<u64> {
    m.get(k).and_then(JsonValue::as_u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_request_round_trips_with_embedded_case_text() {
        let case = "# swp-fuzz regression\nmachine m {\n    unit C0 count=1 latency=2 table[X./.X]\n}\nddg {\n    node n0 class=0 latency=2\n}\n";
        let req = Request::Solve(SolveRequest {
            id: "r-1".into(),
            case: case.into(),
            timeout_ms: Some(250),
            ticks: Some(100_000),
            max_t: Some(4),
            heuristic: Some(false),
            oracle: Some(ConflictOracleMode::Automaton),
            engine: Some(Engine::Portfolio),
            inject_panic: true,
        });
        let line = req.to_json_line();
        assert!(!line.contains('\n'), "newlines must be escaped: {line}");
        assert_eq!(Request::from_json_line(&line).expect("round trip"), req);
    }

    #[test]
    fn minimal_requests_round_trip() {
        for req in [
            Request::Ping { id: "p".into() },
            Request::Stats { id: String::new() },
            Request::Shutdown { id: "s".into() },
            Request::Solve(SolveRequest::new("r", "machine m {}")),
        ] {
            let line = req.to_json_line();
            assert_eq!(Request::from_json_line(&line).expect("round trip"), req);
        }
    }

    #[test]
    fn session_requests_round_trip() {
        let edits = [
            EditOp::AddNode {
                name: "n9".into(),
                class: 1,
                latency: 3,
            },
            EditOp::RemoveNode { index: 2 },
            EditOp::AddEdge {
                src: 0,
                dst: 4,
                distance: 1,
            },
            EditOp::RemoveEdge {
                src: 3,
                dst: 3,
                distance: 2,
            },
        ];
        let mut reqs = vec![
            Request::SessionOpen {
                id: "o".into(),
                case: "machine m {}\nddg {}".into(),
            },
            Request::SessionSolve {
                id: "s".into(),
                session: 7,
                ticks: Some(1000),
                timeout_ms: None,
            },
            Request::SessionClose {
                id: "c".into(),
                session: 7,
            },
        ];
        for edit in edits {
            reqs.push(Request::SessionEdit {
                id: "e".into(),
                session: 7,
                edit,
            });
        }
        for req in reqs {
            let line = req.to_json_line();
            assert_eq!(Request::from_json_line(&line).expect("round trip"), req);
        }
    }

    #[test]
    fn http_route_defaults_supply_op_and_session() {
        let parsed =
            Request::from_json_line_with(r#"{"id":"x"}"#, "session_solve", Some(3)).expect("parse");
        assert_eq!(
            parsed,
            Request::SessionSolve {
                id: "x".into(),
                session: 3,
                ticks: None,
                timeout_ms: None,
            }
        );
        assert!(
            Request::from_json_line(r#"{"op":"session_solve","id":"x"}"#)
                .unwrap_err()
                .contains("session")
        );
        assert!(Request::from_json_line(
            r#"{"op":"session_edit","id":"x","session":1,"edit":"warp"}"#
        )
        .unwrap_err()
        .contains("warp"));
    }

    #[test]
    fn session_replies_round_trip() {
        let mut r = Reply::status("sess", ReplyStatus::Ok);
        r.session = Some(4);
        r.nodes = Some(6);
        r.edges = Some(5);
        r.cone = Some(3);
        let back = Reply::from_json_line(&r.to_json_line()).expect("round trip");
        assert_eq!(back, r);
    }

    #[test]
    fn op_defaults_to_solve_for_http_bodies() {
        let parsed = Request::from_json_line(r#"{"id":"x","case":"text"}"#).expect("parse");
        match parsed {
            Request::Solve(r) => {
                assert_eq!(r.id, "x");
                assert_eq!(r.case, "text");
                assert!(!r.inject_panic);
            }
            other => panic!("expected solve, got {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_descriptive_errors() {
        assert!(Request::from_json_line("not json").is_err());
        assert!(Request::from_json_line(r#"{"op":"warp","id":"x"}"#)
            .unwrap_err()
            .contains("warp"));
        assert!(Request::from_json_line(r#"{"op":"solve","id":"x"}"#)
            .unwrap_err()
            .contains("case"));
        assert!(Request::from_json_line(
            r#"{"op":"solve","id":"x","case":"c","oracle":"psychic"}"#
        )
        .unwrap_err()
        .contains("psychic"));
        assert!(Request::from_json_line(
            r#"{"op":"solve","id":"x","case":"c","engine":"quantum"}"#
        )
        .unwrap_err()
        .contains("quantum"));
    }

    #[test]
    fn replies_round_trip_and_every_status_has_a_stable_label() {
        let all = [
            ReplyStatus::Ok,
            ReplyStatus::Solved,
            ReplyStatus::Cached,
            ReplyStatus::Unscheduled,
            ReplyStatus::BudgetExhausted,
            ReplyStatus::Overloaded,
            ReplyStatus::Cancelled,
            ReplyStatus::InternalPanic,
            ReplyStatus::BadRequest,
            ReplyStatus::InternalError,
        ];
        for status in all {
            assert_eq!(ReplyStatus::parse(status.as_str()), Some(status));
            let mut r = Reply::status("id-9", status);
            r.period = Some(7);
            r.retry_after_ms = Some(12);
            r.error = Some("why".into());
            let back = Reply::from_json_line(&r.to_json_line()).expect("round trip");
            assert_eq!(back, r);
        }
        assert_eq!(ReplyStatus::parse("nope"), None);
    }

    #[test]
    fn http_codes_map_sanely() {
        assert_eq!(ReplyStatus::Solved.http_code(), 200);
        assert_eq!(ReplyStatus::Overloaded.http_code(), 429);
        assert_eq!(ReplyStatus::BadRequest.http_code(), 400);
        assert_eq!(ReplyStatus::InternalPanic.http_code(), 500);
    }
}
