//! The `swpd` daemon binary.
//!
//! ```text
//! swpd [--addr 127.0.0.1:0] [--workers 4] [--queue 64]
//!      [--artifact swpd.jsonl] [--resume] [--admission-ticks N]
//!      [--default-timeout-ms 10000] [--max-timeout-ms 120000]
//!      [--drain-grace-ms 5000] [--allow-fault-injection]
//! ```
//!
//! Prints `swpd listening on <addr>` once ready (scripts scrape the
//! port from it), then serves until a `shutdown` request drains it.
//! Exits 0 after a clean drain.

use std::path::PathBuf;
use std::time::Duration;
use swp_harness::Flags;
use swp_swpd::{Daemon, DaemonConfig};

fn main() {
    let flags = match Flags::parse(
        std::env::args().skip(1),
        &["resume", "allow-fault-injection"],
    ) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("swpd: {e}");
            std::process::exit(2);
        }
    };
    let config = match build_config(&flags) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("swpd: {e}");
            std::process::exit(2);
        }
    };

    let handle = match Daemon::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("swpd: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("swpd listening on {}", handle.addr());

    let stats = handle.wait();
    println!(
        "swpd drained: requests={} solved={} cached={} unscheduled={} \
         budget_exhausted={} overloaded={} cancelled={} panics={} \
         bad_requests={} internal_errors={} replayed={}",
        stats.requests,
        stats.solved,
        stats.cached,
        stats.unscheduled,
        stats.budget_exhausted,
        stats.overloaded,
        stats.cancelled,
        stats.panics,
        stats.bad_requests,
        stats.internal_errors,
        stats.replayed,
    );
    let clean = stats.in_flight == 0 && stats.queue_depth == 0 && stats.internal_errors == 0;
    std::process::exit(if clean { 0 } else { 1 });
}

fn build_config(flags: &Flags) -> Result<DaemonConfig, String> {
    let defaults = DaemonConfig::default();
    Ok(DaemonConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        workers: flags.get_or("workers", defaults.workers)?,
        queue_capacity: flags.get_or("queue", defaults.queue_capacity)?,
        artifact: flags.get("artifact").map(PathBuf::from),
        resume: flags.has("resume"),
        admission_ticks: match flags.get("admission-ticks") {
            None => None,
            Some(raw) => Some(
                raw.parse()
                    .map_err(|_| format!("flag --admission-ticks: cannot parse `{raw}`"))?,
            ),
        },
        default_timeout_ms: flags.get_or("default-timeout-ms", defaults.default_timeout_ms)?,
        max_timeout_ms: flags.get_or("max-timeout-ms", defaults.max_timeout_ms)?,
        drain_grace: Duration::from_millis(
            flags.get_or("drain-grace-ms", defaults.drain_grace.as_millis() as u64)?,
        ),
        allow_fault_injection: flags.has("allow-fault-injection"),
        session_capacity: flags.get_or("sessions", defaults.session_capacity)?,
    })
}
