//! `swpd-load` — hammers a daemon with concurrent mixed traffic and
//! asserts the robustness contract.
//!
//! ```text
//! swpd-load [--requests 1000] [--clients 24] [--seed 1] [--workers 4]
//!           [--queue 48] [--artifact PATH] [--keep-artifact]
//!           [--addr HOST:PORT] [--shutdown] [--solved-out FILE]
//!           [--solved-in FILE] [--smoke]
//! ```
//!
//! Without `--addr` it starts an in-process daemon (over real TCP) and
//! runs the full acceptance: a seeded deterministic mix of hot
//! fingerprints (cache churn), cold guaranteed-schedulable DDGs,
//! adversarial DDGs, injected panics, over-tight deadlines, and
//! mid-solve disconnects, fired from `--clients` pipelined connections;
//! then a graceful drain and an in-process restart that must serve
//! every previously solved fingerprint from the replayed artifact.
//!
//! Hard assertions (exit 1 on any violation):
//! * zero lost or hung requests — every expected id gets exactly one
//!   reply, classified as one of the protocol statuses;
//! * telemetry counters are monotone under concurrent polling, and once
//!   idle `requests == classified_total`;
//! * every injected panic is isolated (`internal_panic` reply, daemon
//!   keeps serving) and `panics` matches the client-observed count;
//! * the drain leaves `in_flight == 0`, `queue_depth == 0`;
//! * post-restart, 100% of previously `solved`/`unscheduled` ids reply
//!   `cached`.
//!
//! With `--addr` the same main phase runs against an external daemon
//! (restart is the script's job): `--solved-out` records the solved id
//! set, a later `--solved-in` run replays it and asserts 100% warm
//! hits, and `--shutdown` sends the drain request at the end.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use swp_fuzz::{gen_case, gen_cases, write_regression, GenConfig};
use swp_harness::Flags;
use swp_swpd::{
    Daemon, DaemonConfig, Reply, ReplyStatus, Request, SolveRequest, StatsSnapshot, SwpdClient,
};

const HOT_POOL: usize = 8;
const PIPELINE_WINDOW: usize = 8;
const READ_TIMEOUT: Duration = Duration::from_secs(120);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Hot,
    Cold,
    Adversarial,
    Panic,
    Deadline,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Hot => "hot",
            Kind::Cold => "cold",
            Kind::Adversarial => "adv",
            Kind::Panic => "panic",
            Kind::Deadline => "deadline",
        }
    }

    fn parse(s: &str) -> Option<Kind> {
        Some(match s {
            "hot" => Kind::Hot,
            "cold" => Kind::Cold,
            "adv" => Kind::Adversarial,
            "panic" => Kind::Panic,
            "deadline" => Kind::Deadline,
            _ => return None,
        })
    }
}

/// splitmix64 — the same per-index decorrelation the fuzz generators
/// use, so the mix is identical across processes given the seed.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn kind_of(seed: u64, i: usize) -> Kind {
    match mix(seed ^ 0xD15C, i as u64) % 40 {
        0..=21 => Kind::Hot,          // 55%
        22..=29 => Kind::Cold,        // 20%
        30..=33 => Kind::Adversarial, // 10%
        34..=36 => Kind::Panic,       // 7.5%
        _ => Kind::Deadline,          // 7.5%
    }
}

struct Mix {
    seed: u64,
    hot_pool: Vec<String>,
}

impl Mix {
    fn new(seed: u64) -> Mix {
        let cfg = GenConfig {
            seed: seed ^ 0x0107,
            adversarial_fraction: 0.0,
            max_nodes: 5,
            ..GenConfig::default()
        };
        let hot_pool = gen_cases(&cfg, HOT_POOL)
            .iter()
            .map(|c| write_regression(c, None))
            .collect();
        Mix { seed, hot_pool }
    }

    fn request(&self, kind: Kind, i: usize) -> SolveRequest {
        let id = format!("{}-{i}", kind.label());
        match kind {
            Kind::Hot => {
                let mut r = SolveRequest::new(id, self.hot_pool[i % HOT_POOL].clone());
                r.timeout_ms = Some(30_000);
                r.ticks = Some(2_000_000);
                r
            }
            Kind::Cold => {
                let cfg = GenConfig {
                    seed: self.seed ^ 0xC01D,
                    adversarial_fraction: 0.0,
                    max_nodes: 6,
                    ..GenConfig::default()
                };
                let case = write_regression(&gen_case(&cfg, i), None);
                let mut r = SolveRequest::new(id, case);
                r.timeout_ms = Some(30_000);
                r.ticks = Some(2_000_000);
                r
            }
            Kind::Adversarial => {
                let cfg = GenConfig {
                    seed: self.seed ^ 0x0adf,
                    adversarial_fraction: 1.0,
                    max_nodes: 8,
                    ..GenConfig::default()
                };
                let case = write_regression(&gen_case(&cfg, i), None);
                let mut r = SolveRequest::new(id, case);
                r.timeout_ms = Some(30_000);
                r.ticks = Some(300_000);
                r
            }
            Kind::Panic => {
                // A dedicated pool so a cache hit can never pre-empt the
                // injected panic (cache lookup runs before the solve).
                let cfg = GenConfig {
                    seed: self.seed ^ 0xFA71,
                    adversarial_fraction: 0.0,
                    max_nodes: 4,
                    ..GenConfig::default()
                };
                let case = write_regression(&gen_case(&cfg, i), None);
                let mut r = SolveRequest::new(id, case);
                r.inject_panic = true;
                r
            }
            Kind::Deadline => {
                let cfg = GenConfig {
                    seed: self.seed ^ 0xDEAD,
                    adversarial_fraction: 1.0,
                    max_nodes: 8,
                    ..GenConfig::default()
                };
                let case = write_regression(&gen_case(&cfg, i), None);
                let mut r = SolveRequest::new(id, case);
                r.timeout_ms = Some(1);
                r
            }
        }
    }

    fn request_for_id(&self, id: &str) -> Option<SolveRequest> {
        let (label, index) = id.rsplit_once('-')?;
        let kind = Kind::parse(label)?;
        let i: usize = index.parse().ok()?;
        Some(self.request(kind, i))
    }

    /// A deliberately heavyweight case for the disconnect mix: big
    /// adversarial DDG, generous budget — we *want* it still running
    /// when the socket drops.
    fn disconnect_request(&self, i: usize) -> SolveRequest {
        let cfg = GenConfig {
            seed: self.seed ^ 0xD15C0,
            adversarial_fraction: 1.0,
            max_nodes: 10,
            ..GenConfig::default()
        };
        let case = write_regression(&gen_case(&cfg, i), None);
        let mut r = SolveRequest::new(format!("disc-{i}"), case);
        r.timeout_ms = Some(30_000);
        r.max_t = Some(32);
        r
    }
}

#[derive(Default)]
struct Outcome {
    replies: HashMap<String, ReplyStatus>,
    violations: Vec<String>,
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let flags = match Flags::parse(
        std::env::args().skip(1),
        &["smoke", "keep-artifact", "shutdown"],
    ) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("swpd-load: {e}");
            return 2;
        }
    };
    let smoke = flags.has("smoke");
    let seed: u64 = flags.get_or("seed", 1).unwrap_or(1);
    let requests: usize = flags
        .get_or("requests", if smoke { 150 } else { 1000 })
        .unwrap_or(1000);
    let clients: usize = flags
        .get_or("clients", if smoke { 8 } else { 24 })
        .unwrap_or(24);
    let disconnects = (requests / 25).clamp(4, 50);
    let mix = Arc::new(Mix::new(seed));

    // Replay-only mode: re-issue a recorded solved set, expect 100%
    // warm cache hits.
    if let Some(path) = flags.get("solved-in") {
        let Some(addr) = flags.get("addr") else {
            eprintln!("swpd-load: --solved-in needs --addr");
            return 2;
        };
        let ids: Vec<String> = match std::fs::read_to_string(path) {
            Ok(t) => t.lines().map(str::to_string).collect(),
            Err(e) => {
                eprintln!("swpd-load: cannot read {path}: {e}");
                return 2;
            }
        };
        let mut violations = replay_solved(addr, &mix, &ids);
        if flags.has("shutdown") {
            let mut c = SwpdClient::new(addr, seed);
            if let Err(e) = c.shutdown() {
                violations.push(format!("shutdown request failed: {e}"));
            }
        }
        return report("replay", &violations, &[("replayed_ids", ids.len() as u64)]);
    }

    // Main phase: external daemon or an in-process one.
    let external = flags.get("addr").map(str::to_string);
    let artifact = flags.get("artifact").map(PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("swpd-load-{}-{seed}.jsonl", std::process::id()))
    });
    let daemon = if external.is_some() {
        None
    } else {
        let config = DaemonConfig {
            workers: flags.get_or("workers", 4).unwrap_or(4),
            queue_capacity: flags.get_or("queue", 48).unwrap_or(48),
            artifact: Some(artifact.clone()),
            resume: false,
            default_timeout_ms: 30_000,
            drain_grace: Duration::from_secs(3),
            allow_fault_injection: true,
            ..DaemonConfig::default()
        };
        match Daemon::start(config) {
            Ok(h) => Some(h),
            Err(e) => {
                eprintln!("swpd-load: failed to start daemon: {e}");
                return 1;
            }
        }
    };
    let addr = external.clone().unwrap_or_else(|| {
        daemon
            .as_ref()
            .map(|d| d.addr().to_string())
            .unwrap_or_default()
    });

    eprintln!(
        "swpd-load: {requests} requests, {clients} clients, {disconnects} disconnects, seed {seed}, daemon {addr}"
    );

    // Telemetry monitor: concurrent polls must observe monotone
    // counters.
    let stop_monitor = Arc::new(AtomicBool::new(false));
    let monitor = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop_monitor);
        thread::spawn(move || monitor_stats(&addr, &stop))
    };

    // Disconnect threads: fire a heavy solve, then hang up mid-flight.
    let disconnectors: Vec<_> = (0..disconnects)
        .map(|i| {
            let addr = addr.clone();
            let mix = Arc::clone(&mix);
            thread::spawn(move || {
                let req = mix.disconnect_request(i);
                if let Ok(mut s) = TcpStream::connect(&addr) {
                    let line = Request::Solve(req).to_json_line();
                    let _ = s.write_all(line.as_bytes());
                    let _ = s.write_all(b"\n");
                    let _ = s.flush();
                    thread::sleep(Duration::from_millis(20));
                    // drop: EOF fires the cancel token server-side
                }
            })
        })
        .collect();

    // Client threads: pipelined JSONL, overload retries via the backoff
    // client.
    let outcomes: Vec<Outcome> = {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                let mix = Arc::clone(&mix);
                let ids: Vec<usize> = (0..requests).filter(|i| i % clients == c).collect();
                thread::spawn(move || client_thread(&addr, &mix, &ids, seed.wrapping_add(c as u64)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    let mut o = Outcome::default();
                    o.violations.push("client thread panicked".into());
                    o
                })
            })
            .collect()
    };
    for d in disconnectors {
        let _ = d.join();
    }

    let mut violations: Vec<String> = Vec::new();
    let mut replies: HashMap<String, ReplyStatus> = HashMap::new();
    for mut o in outcomes {
        violations.append(&mut o.violations);
        replies.extend(o.replies);
    }

    // Zero lost requests: every id replied exactly once (the map
    // structure dedups; double replies would surface as a protocol
    // error in the per-thread reader).
    for i in 0..requests {
        let id = format!("{}-{i}", kind_of(seed, i).label());
        if !replies.contains_key(&id) {
            violations.push(format!("lost request: no reply for {id}"));
        }
    }
    let mut by_status: HashMap<ReplyStatus, u64> = HashMap::new();
    for status in replies.values() {
        *by_status.entry(*status).or_default() += 1;
    }
    let panic_expected = (0..requests)
        .filter(|&i| kind_of(seed, i) == Kind::Panic)
        .count() as u64;
    let panic_seen = by_status
        .get(&ReplyStatus::InternalPanic)
        .copied()
        .unwrap_or(0);
    if panic_seen != panic_expected {
        violations.push(format!(
            "panic isolation: expected {panic_expected} internal_panic replies, saw {panic_seen}"
        ));
    }
    if let Some(n) = by_status.get(&ReplyStatus::InternalError) {
        violations.push(format!("{n} internal_error replies"));
    }

    // Let in-flight disconnect solves cancel/finish, then check the
    // idle accounting identity.
    let mut client = SwpdClient::new(addr.clone(), seed ^ 0xACC7);
    let settle = settle_idle(&mut client, Duration::from_secs(120));
    match settle {
        Ok(stats) => {
            if stats.requests != stats.classified_total() {
                violations.push(format!(
                    "accounting: requests={} but classified_total={}",
                    stats.requests,
                    stats.classified_total()
                ));
            }
            if panic_seen != stats.panics {
                violations.push(format!(
                    "panics counter {} != client-observed {}",
                    stats.panics, panic_seen
                ));
            }
            if stats.internal_errors != 0 {
                violations.push(format!(
                    "daemon counted {} internal_errors",
                    stats.internal_errors
                ));
            }
        }
        Err(e) => violations.push(format!("daemon never went idle: {e}")),
    }

    stop_monitor.store(true, Ordering::Relaxed);
    match monitor.join() {
        Ok((polls, mut monitor_violations)) => {
            violations.append(&mut monitor_violations);
            if polls < 2 {
                violations.push(format!("monitor managed only {polls} stats polls"));
            }
        }
        Err(_) => violations.push("monitor thread panicked".into()),
    }

    // The warm set: ids whose outcome is deterministic and therefore
    // cached (fresh proven solves and exact refutations, plus ids that
    // already hit the cache this run).
    let solved: Vec<String> = {
        let mut v: Vec<String> = replies
            .iter()
            .filter(|(_, s)| {
                matches!(
                    s,
                    ReplyStatus::Solved | ReplyStatus::Unscheduled | ReplyStatus::Cached
                )
            })
            .map(|(id, _)| id.clone())
            .collect();
        v.sort();
        v
    };
    if solved.is_empty() {
        violations.push("no request ever solved — load mix is broken".into());
    }
    if let Some(path) = flags.get("solved-out") {
        if let Err(e) = std::fs::write(path, solved.join("\n") + "\n") {
            violations.push(format!("cannot write {path}: {e}"));
        }
    }

    let mut extras: Vec<(&str, u64)> = vec![
        ("requests", requests as u64),
        ("solved_set", solved.len() as u64),
    ];
    for (status, n) in &by_status {
        extras.push((status.as_str(), *n));
    }

    // Drain; for the in-process daemon also restart and verify the
    // crash-only recovery contract end to end.
    if let Some(handle) = daemon {
        let mut c = SwpdClient::new(addr.clone(), seed ^ 0xD3A1);
        if let Err(e) = c.shutdown() {
            violations.push(format!("shutdown request failed: {e}"));
        }
        let final_stats = handle.wait();
        if final_stats.in_flight != 0 || final_stats.queue_depth != 0 {
            violations.push(format!(
                "unclean drain: in_flight={} queue_depth={}",
                final_stats.in_flight, final_stats.queue_depth
            ));
        }
        if !final_stats.draining {
            violations.push("daemon drained without latching the draining flag".into());
        }

        // Crash-only recovery: a fresh daemon over the same artifact
        // must serve every previously solved fingerprint warm.
        let restarted = Daemon::start(DaemonConfig {
            workers: 2,
            artifact: Some(artifact.clone()),
            resume: true,
            ..DaemonConfig::default()
        });
        match restarted {
            Ok(handle2) => {
                let addr2 = handle2.addr().to_string();
                if handle2.stats().replayed == 0 {
                    violations.push("restart replayed 0 artifact records".into());
                }
                violations.extend(replay_solved(&addr2, &mix, &solved));
                let mut c2 = SwpdClient::new(addr2, seed ^ 0x5EC0);
                let _ = c2.shutdown();
                handle2.wait();
            }
            Err(e) => violations.push(format!("restart failed: {e}")),
        }
        if !flags.has("keep-artifact") {
            let _ = std::fs::remove_file(&artifact);
        }
    } else if flags.has("shutdown") {
        let mut c = SwpdClient::new(addr, seed ^ 0xD3A1);
        if let Err(e) = c.shutdown() {
            violations.push(format!("shutdown request failed: {e}"));
        }
    }

    report("load", &violations, &extras)
}

/// One pipelined client: fire-and-collect in windows, retry overloads
/// through the backoff client.
fn client_thread(addr: &str, mix: &Mix, indices: &[usize], seed: u64) -> Outcome {
    let mut out = Outcome::default();
    let mut overloaded: Vec<String> = Vec::new();

    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            out.violations.push(format!("connect failed: {e}"));
            return out;
        }
    };
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            out.violations.push(format!("clone failed: {e}"));
            return out;
        }
    };
    let mut reader = BufReader::new(stream);

    for window in indices.chunks(PIPELINE_WINDOW) {
        let mut sent = 0usize;
        for &i in window {
            let req = mix.request(kind_of(mix.seed, i), i);
            let line = Request::Solve(req).to_json_line();
            if writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_err()
            {
                out.violations.push(format!("write failed at index {i}"));
                return out;
            }
            sent += 1;
        }
        for _ in 0..sent {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    out.violations
                        .push("daemon closed connection mid-window".into());
                    return out;
                }
                Ok(_) => {}
                Err(e) => {
                    out.violations
                        .push(format!("hung request: read failed/timed out: {e}"));
                    return out;
                }
            }
            match Reply::from_json_line(line.trim()) {
                Ok(reply) => {
                    if reply.status == ReplyStatus::Overloaded {
                        overloaded.push(reply.id);
                    } else if out.replies.insert(reply.id.clone(), reply.status).is_some() {
                        out.violations
                            .push(format!("duplicate reply for {}", reply.id));
                    }
                }
                Err(e) => out.violations.push(format!("unparseable reply: {e}")),
            }
        }
    }
    drop(writer);
    drop(reader);

    // Overload retries: the backoff client re-submits until admitted
    // (or returns the final refusal, which still counts as classified).
    let mut retry = SwpdClient::new(addr, seed);
    retry.max_retries = 10;
    for id in overloaded {
        let Some(req) = mix.request_for_id(&id) else {
            out.violations
                .push(format!("unparseable overloaded id {id}"));
            continue;
        };
        match retry.solve(&req) {
            Ok(reply) => {
                out.replies.insert(id, reply.status);
            }
            Err(e) => out.violations.push(format!("retry of {id} failed: {e}")),
        }
    }
    out
}

/// Polls `stats` until the daemon stops, asserting monotonicity.
fn monitor_stats(addr: &str, stop: &AtomicBool) -> (u64, Vec<String>) {
    let mut client = SwpdClient::new(addr, 0x3417);
    let mut polls = 0u64;
    let mut violations = Vec::new();
    let mut last: Option<StatsSnapshot> = None;
    let mut check = |client: &mut SwpdClient, polls: &mut u64, violations: &mut Vec<String>| {
        if let Ok(snap) = client.stats() {
            *polls += 1;
            if let Some(prev) = last {
                if let Some(field) = snap.monotone_regression_from(&prev) {
                    violations.push(format!("telemetry counter `{field}` went backwards"));
                }
            }
            last = Some(snap);
        }
    };
    while !stop.load(Ordering::Relaxed) {
        check(&mut client, &mut polls, &mut violations);
        thread::sleep(Duration::from_millis(50));
    }
    // One final poll so even a blink-and-done run gets a monotonicity
    // comparison.
    check(&mut client, &mut polls, &mut violations);
    (polls, violations)
}

/// Waits until the daemon reports no queued or in-flight work.
fn settle_idle(client: &mut SwpdClient, timeout: Duration) -> Result<StatsSnapshot, String> {
    let started = Instant::now();
    loop {
        match client.stats() {
            Ok(s) if s.in_flight == 0 && s.queue_depth == 0 => return Ok(s),
            Ok(_) => {}
            Err(e) => return Err(e.to_string()),
        }
        if started.elapsed() > timeout {
            return Err(format!("still busy after {timeout:?}"));
        }
        thread::sleep(Duration::from_millis(100));
    }
}

/// Re-issues every id in `solved` and demands a `cached` reply.
fn replay_solved(addr: &str, mix: &Mix, solved: &[String]) -> Vec<String> {
    let mut violations = Vec::new();
    let mut client = SwpdClient::new(addr, 0x4EB1A);
    client.max_retries = 10;
    let mut warm = 0usize;
    for id in solved {
        let Some(req) = mix.request_for_id(id) else {
            violations.push(format!("unparseable solved id {id}"));
            continue;
        };
        match client.solve(&req) {
            Ok(reply) if reply.status == ReplyStatus::Cached => warm += 1,
            Ok(reply) => violations.push(format!(
                "cold after restart: {id} replied {} (want cached)",
                reply.status.as_str()
            )),
            Err(e) => violations.push(format!("replay of {id} failed: {e}")),
        }
    }
    if warm != solved.len() {
        violations.push(format!(
            "warm hit rate {warm}/{} — contract requires 100%",
            solved.len()
        ));
    }
    violations
}

fn report(phase: &str, violations: &[String], extras: &[(&str, u64)]) -> i32 {
    let detail: Vec<String> = extras.iter().map(|(k, v)| format!("{k}={v}")).collect();
    eprintln!("swpd-load [{phase}]: {}", detail.join(" "));
    if violations.is_empty() {
        eprintln!("swpd-load [{phase}]: OK — contract holds");
        0
    } else {
        for v in violations {
            eprintln!("swpd-load [{phase}]: VIOLATION: {v}");
        }
        eprintln!("swpd-load [{phase}]: {} violation(s)", violations.len());
        1
    }
}
