//! `swpd` — a fault-isolated scheduling daemon.
//!
//! The workspace's solver stack answers one question — "what is the best
//! initiation interval for this loop on this machine, and what schedule
//! achieves it?" — as a library call. This crate turns that call into a
//! *service*: a daemon that accepts schedule requests over plain TCP
//! (newline-delimited JSON, with a minimal HTTP/1.1 front door for
//! curl-ability), dispatches them onto a worker pool, and answers repeat
//! requests from the same fingerprint-keyed result cache the corpus
//! harness uses ([`swp_harness::ResultCache`]).
//!
//! The interesting part is not the transport but the failure behaviour:
//!
//! * **Admission control** — every request's solve budget is sliced from
//!   one global pool with [`swp_milp::Budget::try_slice`], so a drained
//!   pool refuses new work *at admission* instead of spawning solves
//!   whose first tick trips. Client deadlines (`timeout_ms`) propagate
//!   into the per-request [`Budget`](swp_milp::Budget).
//! * **Backpressure** — the request queue is bounded; when it is full
//!   the daemon load-sheds with an `overloaded` reply carrying a
//!   `retry_after_ms` hint derived from observed solve times, and the
//!   bundled [`client`] retries with jittered exponential backoff.
//! * **Panic isolation** — each solve runs under
//!   `std::panic::catch_unwind`; a poisoned solve kills exactly one
//!   request (reply `internal_panic`, counter `panics`), never a worker
//!   or the daemon.
//! * **Cancellation** — a dropped connection fires the request's
//!   [`CancelToken`](swp_milp::CancelToken), so in-flight solves for
//!   dead clients stop within one budget check interval.
//! * **Incremental sessions** — `POST /session` (op `session_open`)
//!   pins a [`swp_incr::SolveSession`] in daemon memory; edits
//!   (`/session/{id}/edit`) invalidate only the touched dependency
//!   cone's warm facts, solves (`/session/{id}/solve`) run warm-started,
//!   and the per-operation reuse deltas (basis hits, no-good replays,
//!   skipped periods) land in the monotone `stats` counters.
//! * **Graceful drain, crash-only recovery** — a shutdown request stops
//!   the accept loop, finishes (or budget-cancels, after a grace
//!   period) in-flight work, and flushes the JSONL artifact; because
//!   every cacheable result was already streamed to the artifact, a
//!   restart simply replays it into the cache and serves previously
//!   solved fingerprints warm. There is no other persistence path —
//!   recovery after a crash and after a clean drain are the same code.
//!
//! Two binaries ship with the crate: `swpd` (the daemon) and
//! `swpd-load` (a load generator that hammers a daemon with thousands
//! of concurrent mixed requests — hot and cold fingerprints,
//! adversarial DDGs, mid-solve disconnects, injected panics — and
//! asserts zero lost or hung requests, monotone telemetry, and a 100%
//! warm-cache hit rate after a restart).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
mod session;
pub mod state;
pub mod stats;
mod worker;

pub use client::SwpdClient;
pub use proto::{Reply, ReplyStatus, Request, SolveRequest, PROTO_VERSION};
pub use server::{Daemon, DaemonHandle};
pub use state::DaemonConfig;
pub use stats::StatsSnapshot;
