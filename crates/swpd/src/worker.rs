//! Solver workers: pop jobs, solve under a per-request budget carved
//! from the admission pool, classify the outcome, feed the cache.
//!
//! The classification here is *total*: every popped job produces exactly
//! one reply, whatever happens — including a panicking solve, which
//! `catch_unwind` confines to its own request. Deterministic outcomes
//! (proven solves, exact refutations) are inserted into the shared
//! cache and appended to the JSONL artifact in the same step, which is
//! what makes recovery crash-only: the artifact is the only state, and
//! it is already durable the moment the reply leaves.

use crate::proto::{Reply, ReplyStatus};
use crate::state::{lock, Job, Shared};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use swp_core::{
    FaultPlan, Optimality, RateOptimalScheduler, ScheduleError, SchedulerConfig, SolvedBy,
    SolverStats, WarmState,
};
use swp_harness::{CacheKey, LoopRecord, RecordReuse, SuiteOutcome, SuiteRunConfig};
use swp_loops::fingerprint::{ddg_fingerprint, machine_fingerprint};

/// One worker thread's main loop: runs until draining *and* the queue
/// is dry.
pub(crate) fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(job) = q.pop_front() {
                    shared.stats.set_queue_depth(q.len() as u64);
                    break Some(job);
                }
                if shared.draining.load(Ordering::Relaxed) {
                    break None;
                }
                q = match shared.queue_cv.wait(q) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        let Some(job) = job else { return };
        shared.stats.enter_flight();
        let reply = process(&shared, &job);
        shared.deregister(job.seq);
        shared.stats.leave_flight();
        shared.finish(&job.reply_to, reply);
    }
}

/// Solves one job end to end. Never panics outward; never skips the
/// reply.
fn process(shared: &Shared, job: &Job) -> Reply {
    let req = &job.req;
    // Drain hard-stop or an already-dead client: don't start the solve.
    if shared.hard_drain.load(Ordering::Relaxed) || job.cancel.is_cancelled() {
        return Reply::error(&req.id, ReplyStatus::Cancelled, "cancelled before solve");
    }

    let parsed = match swp_fuzz::parse_regression(&req.id, &req.case) {
        Ok(p) => p.case,
        Err(why) => return Reply::error(&req.id, ReplyStatus::BadRequest, why),
    };
    let (machine, ddg) = (parsed.machine, parsed.ddg);

    // Cache key: only outcome-relevant knobs, never budgets, so client
    // deadlines don't fragment the cache (see the harness's
    // SuiteRunConfig::fingerprint contract).
    let max_t = req.max_t.unwrap_or(8);
    let heuristic = req.heuristic.unwrap_or(true);
    let oracle = req.oracle.unwrap_or_default();
    let engine = req.engine.unwrap_or_default();
    let cache_cfg = SuiteRunConfig {
        num_loops: 1,
        time_limit_per_t: None,
        per_loop_ticks: None,
        max_t_above_lb: max_t,
        heuristic_incumbent: heuristic,
        conflict_oracle: oracle,
        engine,
        // The solve below runs under the scheduler's default
        // warm-sweep mode; fingerprint accordingly so daemon records
        // stay interchangeable with the harness's warm records.
        warm: true,
        layout: Default::default(),
        max_live: None,
    };
    let key = CacheKey {
        ddg: ddg_fingerprint(&ddg),
        machine: machine_fingerprint(&machine),
        config: cache_cfg.fingerprint(),
    };
    // Fault-injected requests bypass the cache: the injection must
    // reach the solver even when the fingerprint happens to collide
    // with an already-solved case (small DDGs collide readily).
    if !req.inject_panic {
        if let Some(rec) = lock(&shared.cache).lookup(&key) {
            return reply_from_record(&req.id, rec);
        }
    }

    // Admission: slice the global pool; a pool that cannot fund an
    // equal worker share refuses the solve up front.
    let workers = shared.config.workers.max(1) as u64;
    let share = match shared.admission.try_slice(workers) {
        Ok(b) => b,
        Err(e) => {
            return Reply::error(
                &req.id,
                ReplyStatus::BudgetExhausted,
                format!("admission pool: {e}"),
            )
        }
    };
    // With a capped pool the share keeps the pool's counter (solves
    // drain it globally); with an unlimited pool each request gets an
    // isolated counter so its tick cap is exact.
    let mut budget = if shared.config.admission_ticks.is_some() {
        share
    } else {
        share.fork_isolated()
    };
    if let Some(t) = req.ticks {
        budget = budget.limit_ticks(t);
    }
    let timeout_ms = req
        .timeout_ms
        .unwrap_or(shared.config.default_timeout_ms)
        .min(shared.config.max_timeout_ms);
    budget = budget
        .deadline_in(Duration::from_millis(timeout_ms))
        .cancelled_by(&job.cancel);

    let faults = FaultPlan {
        panic_in_solver: req.inject_panic,
        ..FaultPlan::default()
    };
    let scheduler = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            time_limit_per_t: None,
            time_limit_total: None,
            max_t_above_lb: max_t,
            heuristic_incumbent: heuristic,
            conflict_oracle: oracle,
            engine,
            faults,
            ..SchedulerConfig::default()
        },
    );

    let t_lb_counting = ddg
        .t_dep()
        .unwrap_or(0)
        .max(machine.t_res_counting(&ddg).unwrap_or(0));
    let ticks_before = budget.ticks_used();
    let started = Instant::now();
    // Per-request warm state: reuse is within this solve's T-sweep only
    // (cross-solve reuse is the session endpoints' job).
    let mut warm = WarmState::new();
    let solved = catch_unwind(AssertUnwindSafe(|| {
        scheduler.schedule_with_warm(&ddg, &budget, &mut warm)
    }));
    let solve_time = started.elapsed();
    let ticks = budget.ticks_used().saturating_sub(ticks_before);
    shared.observe_solve_us(solve_time.as_micros() as u64);
    shared.stats.record_reuse(&warm.reuse);

    let base = |status: ReplyStatus| {
        let mut r = Reply::status(&req.id, status);
        r.ticks = Some(ticks);
        r.solve_us = Some(solve_time.as_micros() as u64);
        r
    };
    let record = |period: Option<u32>,
                  t_lb: u32,
                  outcome: SuiteOutcome,
                  proven: bool,
                  stats: SolverStats| LoopRecord {
        index: job.seq as usize,
        name: req.id.clone(),
        num_nodes: ddg.num_nodes(),
        key,
        t_lb,
        t_lb_counting,
        period,
        outcome,
        proven,
        bb_nodes: stats.bb_nodes,
        lp_iterations: stats.lp_iterations,
        ticks,
        periods_attempted: stats.periods_attempted,
        races: stats.races,
        race_cp_wins: stats.race_cp_wins,
        race_ilp_wins: stats.race_ilp_wins,
        any_timeout: stats.any_timeout(),
        reuse: RecordReuse::from(&warm.reuse),
        solve_time,
        cached: false,
    };

    match solved {
        Err(payload) => {
            let why = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("solve panicked");
            let mut r = base(ReplyStatus::InternalPanic);
            r.error = Some(why.to_string());
            r
        }
        Ok(Ok(result)) => {
            let stats = result.solver_stats();
            let period = result.schedule.initiation_interval();
            let solved_by = result.solved_by();
            let mut r = base(match result.optimality {
                Optimality::Proven => ReplyStatus::Solved,
                Optimality::BudgetExhausted { .. } => ReplyStatus::BudgetExhausted,
            });
            r.period = Some(period);
            r.t_lb = Some(result.t_lb());
            r.slack = Some(result.slack_above_lb());
            r.proven = Some(result.is_proven_optimal());
            r.solved_by = Some(
                match solved_by {
                    SolvedBy::Ilp => "ilp",
                    SolvedBy::Cp => "cp",
                    SolvedBy::Heuristic => "heuristic",
                }
                .to_string(),
            );
            shared.stats.record_races(&stats);
            if result.is_proven_optimal() {
                commit(
                    shared,
                    record(
                        Some(period),
                        result.t_lb(),
                        SuiteOutcome::Scheduled {
                            slack: result.slack_above_lb(),
                            solved_by,
                        },
                        true,
                        stats,
                    ),
                );
            }
            r
        }
        Ok(Err(e)) => match e {
            ScheduleError::Cancelled => base(ReplyStatus::Cancelled),
            ScheduleError::NotFound { t_lb, attempts, .. } => {
                let stats = SolverStats::from_attempts(&attempts);
                if stats.timeouts > 0 || stats.engine_failures > 0 {
                    let mut r = base(ReplyStatus::BudgetExhausted);
                    r.t_lb = Some(t_lb);
                    r.error = Some("budget ran out before any period was settled".to_string());
                    r
                } else {
                    // Every period in range refuted exactly: a
                    // deterministic answer, so cache it.
                    let mut r = base(ReplyStatus::Unscheduled);
                    r.t_lb = Some(t_lb);
                    r.proven = Some(false);
                    commit(
                        shared,
                        record(None, t_lb, SuiteOutcome::Unscheduled, false, stats),
                    );
                    r
                }
            }
            ScheduleError::NoFinitePeriod => {
                // Structural: a zero-distance dependence cycle. Also
                // deterministic, also cached.
                let mut r = base(ReplyStatus::Unscheduled);
                r.error = Some(e.to_string());
                commit(
                    shared,
                    record(
                        None,
                        0,
                        SuiteOutcome::Unscheduled,
                        false,
                        SolverStats::default(),
                    ),
                );
                r
            }
            ScheduleError::UnknownClass(_) | ScheduleError::BadMachine(_) => {
                let mut r = base(ReplyStatus::BadRequest);
                r.error = Some(e.to_string());
                r
            }
            other => {
                let mut r = base(ReplyStatus::InternalError);
                r.error = Some(other.to_string());
                r
            }
        },
    }
}

/// Inserts a deterministic record into the in-memory cache and appends
/// it to the artifact (flushed per record — the durability point).
fn commit(shared: &Shared, rec: LoopRecord) {
    if let Some(artifact) = &shared.artifact {
        if let Err(e) = lock(artifact).write_record(&rec) {
            eprintln!("swpd: artifact write failed for {}: {e}", rec.name);
        }
    }
    lock(&shared.cache).insert(rec);
}

/// Builds a `cached` reply out of a stored record.
fn reply_from_record(id: &str, rec: &LoopRecord) -> Reply {
    let mut r = Reply::status(id, ReplyStatus::Cached);
    r.period = rec.period;
    r.t_lb = Some(rec.t_lb);
    r.proven = Some(rec.proven);
    r.ticks = Some(rec.ticks);
    r.solve_us = Some(rec.solve_time.as_micros() as u64);
    if let SuiteOutcome::Scheduled { slack, solved_by } = &rec.outcome {
        r.slack = Some(*slack);
        r.solved_by = Some(
            match solved_by {
                SolvedBy::Ilp => "ilp",
                SolvedBy::Cp => "cp",
                SolvedBy::Heuristic => "heuristic",
            }
            .to_string(),
        );
    }
    r
}
