//! A small blocking client with overload-aware retry.
//!
//! One connection per call keeps the failure model trivial (no
//! half-dead pipelines to reason about); the load generator, which
//! wants pipelining, speaks the JSONL protocol directly instead. On an
//! `overloaded` reply the client honours the daemon's `retry_after_ms`
//! hint with jittered exponential backoff: sleep a uniformly random
//! duration in `[hint/2, hint]`, doubling `hint` each attempt (capped),
//! so a thundering herd of refused clients decorrelates instead of
//! re-stampeding in lockstep.

use crate::proto::{Reply, ReplyStatus, Request, SolveRequest};
use crate::stats::StatsSnapshot;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;
use swp_incr::EditOp;

/// Longest single backoff sleep, whatever the hint escalates to.
const BACKOFF_CAP_MS: u64 = 2_000;

/// A blocking swpd client.
#[derive(Debug)]
pub struct SwpdClient {
    addr: String,
    /// Additional attempts after the first when the daemon sheds load
    /// (so `max_retries = 3` means at most 4 round trips).
    pub max_retries: u32,
    /// Backoff used when an `overloaded` reply carries no hint.
    pub fallback_backoff_ms: u64,
    /// Per-call socket read timeout (a hung daemon surfaces as an
    /// `io::Error` instead of a hung client).
    pub read_timeout: Option<Duration>,
    rng: SmallRng,
}

impl SwpdClient {
    /// A client for the daemon at `addr` (e.g. `"127.0.0.1:4455"`),
    /// with retry jitter seeded from `seed` for reproducible tests.
    pub fn new(addr: impl Into<String>, seed: u64) -> SwpdClient {
        SwpdClient {
            addr: addr.into(),
            max_retries: 5,
            fallback_backoff_ms: 25,
            read_timeout: Some(Duration::from_secs(120)),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Solves, retrying with jittered exponential backoff while the
    /// daemon sheds load. The final reply is returned even if it is
    /// still `overloaded` (the caller sees the refusal, never a lie).
    ///
    /// # Errors
    ///
    /// Transport failures only (connect, write, read, parse); protocol-
    /// level failures arrive as the reply's status.
    pub fn solve(&mut self, req: &SolveRequest) -> io::Result<Reply> {
        let mut hint_ms: Option<u64> = None;
        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                let base = hint_ms
                    .unwrap_or(self.fallback_backoff_ms)
                    .saturating_mul(1 << (attempt - 1).min(8))
                    .clamp(1, BACKOFF_CAP_MS);
                // Jitter: uniform in [base/2, base].
                let sleep_ms = self.rng.gen_range(base / 2..=base.max(1));
                thread::sleep(Duration::from_millis(sleep_ms));
            }
            let reply = self.roundtrip(&Request::Solve(req.clone()))?;
            if reply.status != ReplyStatus::Overloaded || attempt == self.max_retries {
                return Ok(reply);
            }
            hint_ms = reply.retry_after_ms.or(hint_ms);
        }
        unreachable!("loop returns on the final attempt");
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn ping(&mut self) -> io::Result<Reply> {
        self.roundtrip(&Request::Ping { id: "ping".into() })
    }

    /// Fetches the daemon's telemetry counters.
    ///
    /// # Errors
    ///
    /// Transport failures, or a stats reply missing its counters.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        let reply = self.roundtrip(&Request::Stats { id: "stats".into() })?;
        reply.counters.ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "stats reply had no counters")
        })
    }

    /// Opens an incremental solve session for `case`; the reply's
    /// `session` field is the handle for the other session calls.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn session_open(&mut self, id: &str, case: &str) -> io::Result<Reply> {
        self.roundtrip(&Request::SessionOpen {
            id: id.into(),
            case: case.into(),
        })
    }

    /// Applies one DDG edit to an open session.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn session_edit(&mut self, session: u64, edit: EditOp) -> io::Result<Reply> {
        self.roundtrip(&Request::SessionEdit {
            id: format!("edit-{session}"),
            session,
            edit,
        })
    }

    /// Solves an open session's current instance (warm).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn session_solve(&mut self, session: u64) -> io::Result<Reply> {
        self.roundtrip(&Request::SessionSolve {
            id: format!("solve-{session}"),
            session,
            ticks: None,
            timeout_ms: None,
        })
    }

    /// Closes a session and frees its slot.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn session_close(&mut self, session: u64) -> io::Result<Reply> {
        self.roundtrip(&Request::SessionClose {
            id: format!("close-{session}"),
            session,
        })
    }

    /// Asks the daemon to drain.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> io::Result<Reply> {
        self.roundtrip(&Request::Shutdown {
            id: "shutdown".into(),
        })
    }

    fn roundtrip(&mut self, req: &Request) -> io::Result<Reply> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(self.read_timeout)?;
        stream.set_nodelay(true).ok();
        let mut writer = stream.try_clone()?;
        writer.write_all(req.to_json_line().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line)?;
        if line.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection without replying",
            ));
        }
        Reply::from_json_line(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}
