//! Daemon telemetry: relaxed atomic counters plus a wire snapshot.
//!
//! Every counter is monotone non-decreasing for the lifetime of one
//! daemon (the two gauges, `in_flight` and `queue_depth`, are the only
//! exceptions) — the load generator polls `stats` during a run and
//! asserts exactly that. The accounting invariant the daemon maintains:
//! once idle (`in_flight == 0`, `queue_depth == 0`), `requests` equals
//! the sum of the per-status classification counters, because every
//! request is classified as exactly one [`ReplyStatus`].
//!
//! [`ReplyStatus`]: crate::proto::ReplyStatus

use crate::proto::ReplyStatus;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use swp_core::{ReuseStats, SolverStats};
use swp_harness::json::{JsonValue, ObjectWriter};

/// Live daemon counters (interior-mutable; shared across threads).
#[derive(Debug, Default)]
pub struct SwpdStats {
    requests: AtomicU64,
    ok: AtomicU64,
    solved: AtomicU64,
    cached: AtomicU64,
    unscheduled: AtomicU64,
    budget_exhausted: AtomicU64,
    overloaded: AtomicU64,
    cancelled: AtomicU64,
    panics: AtomicU64,
    bad_requests: AtomicU64,
    internal_errors: AtomicU64,
    in_flight: AtomicU64,
    queue_depth: AtomicU64,
    replayed: AtomicU64,
    races: AtomicU64,
    race_cp_wins: AtomicU64,
    race_ilp_wins: AtomicU64,
    sessions_opened: AtomicU64,
    session_edits: AtomicU64,
    session_solves: AtomicU64,
    reuse_periods_skipped: AtomicU64,
    reuse_basis_hits: AtomicU64,
    reuse_ims_hint_hits: AtomicU64,
    reuse_nogood_replays: AtomicU64,
    reuse_replays: AtomicU64,
    reuse_cone_nodes: AtomicU64,
    draining: AtomicBool,
}

impl SwpdStats {
    /// Counts one received request (before any classification).
    pub fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one classified reply.
    pub fn count_reply(&self, status: ReplyStatus) {
        let counter = match status {
            ReplyStatus::Ok => &self.ok,
            ReplyStatus::Solved => &self.solved,
            ReplyStatus::Cached => &self.cached,
            ReplyStatus::Unscheduled => &self.unscheduled,
            ReplyStatus::BudgetExhausted => &self.budget_exhausted,
            ReplyStatus::Overloaded => &self.overloaded,
            ReplyStatus::Cancelled => &self.cancelled,
            ReplyStatus::InternalPanic => &self.panics,
            ReplyStatus::BadRequest => &self.bad_requests,
            ReplyStatus::InternalError => &self.internal_errors,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one solve as started (gauge).
    pub fn enter_flight(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one solve as finished (gauge).
    pub fn leave_flight(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Publishes the current queue length (gauge).
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Records how many artifact records the startup replay loaded.
    pub fn set_replayed(&self, n: u64) {
        self.replayed.store(n, Ordering::Relaxed);
    }

    /// Accumulates one solve's portfolio-race counters (no-ops outside
    /// portfolio mode, where every field is zero).
    pub fn record_races(&self, stats: &SolverStats) {
        if stats.races == 0 {
            return;
        }
        self.races
            .fetch_add(u64::from(stats.races), Ordering::Relaxed);
        self.race_cp_wins
            .fetch_add(u64::from(stats.race_cp_wins), Ordering::Relaxed);
        self.race_ilp_wins
            .fetch_add(u64::from(stats.race_ilp_wins), Ordering::Relaxed);
    }

    /// Counts one opened session.
    pub fn count_session_open(&self) {
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one applied session edit.
    pub fn count_session_edit(&self) {
        self.session_edits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one session solve.
    pub fn count_session_solve(&self) {
        self.session_solves.fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulates a session's reuse-counter *delta* (what this one
    /// operation added to the session's lifetime totals).
    pub fn record_reuse(&self, delta: &ReuseStats) {
        self.reuse_periods_skipped
            .fetch_add(delta.periods_skipped, Ordering::Relaxed);
        self.reuse_basis_hits
            .fetch_add(delta.basis_hits, Ordering::Relaxed);
        self.reuse_ims_hint_hits
            .fetch_add(delta.ims_hint_hits, Ordering::Relaxed);
        self.reuse_nogood_replays
            .fetch_add(delta.nogood_replays, Ordering::Relaxed);
        self.reuse_replays
            .fetch_add(delta.replays, Ordering::Relaxed);
        self.reuse_cone_nodes
            .fetch_add(delta.cone_nodes, Ordering::Relaxed);
    }

    /// Latches the draining flag (never unlatched).
    pub fn set_draining(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }

    /// Reads every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            solved: self.solved.load(Ordering::Relaxed),
            cached: self.cached.load(Ordering::Relaxed),
            unscheduled: self.unscheduled.load(Ordering::Relaxed),
            budget_exhausted: self.budget_exhausted.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            internal_errors: self.internal_errors.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            replayed: self.replayed.load(Ordering::Relaxed),
            races: self.races.load(Ordering::Relaxed),
            race_cp_wins: self.race_cp_wins.load(Ordering::Relaxed),
            race_ilp_wins: self.race_ilp_wins.load(Ordering::Relaxed),
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            session_edits: self.session_edits.load(Ordering::Relaxed),
            session_solves: self.session_solves.load(Ordering::Relaxed),
            reuse_periods_skipped: self.reuse_periods_skipped.load(Ordering::Relaxed),
            reuse_basis_hits: self.reuse_basis_hits.load(Ordering::Relaxed),
            reuse_ims_hint_hits: self.reuse_ims_hint_hits.load(Ordering::Relaxed),
            reuse_nogood_replays: self.reuse_nogood_replays.load(Ordering::Relaxed),
            reuse_replays: self.reuse_replays.load(Ordering::Relaxed),
            reuse_cone_nodes: self.reuse_cone_nodes.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the daemon counters, as carried by `stats`
/// replies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests received (every parsed-or-not message counts once).
    pub requests: u64,
    /// `ok` replies (ping / stats / shutdown acknowledgements).
    pub ok: u64,
    /// Fresh proven solves.
    pub solved: u64,
    /// Cache hits.
    pub cached: u64,
    /// Proven-infeasible answers.
    pub unscheduled: u64,
    /// Budget trips (deadline, ticks, admission pool).
    pub budget_exhausted: u64,
    /// Load-shed refusals.
    pub overloaded: u64,
    /// Disconnect / drain cancellations.
    pub cancelled: u64,
    /// Caught solve panics.
    pub panics: u64,
    /// Malformed requests.
    pub bad_requests: u64,
    /// Structural solver failures.
    pub internal_errors: u64,
    /// Solves currently executing (gauge).
    pub in_flight: u64,
    /// Requests currently queued (gauge).
    pub queue_depth: u64,
    /// Artifact records replayed into the cache at startup.
    pub replayed: u64,
    /// Portfolio races run across all solves (0 outside portfolio mode).
    pub races: u64,
    /// Races the CP backend settled first.
    pub race_cp_wins: u64,
    /// Races the ILP settled first.
    pub race_ilp_wins: u64,
    /// Incremental sessions opened.
    pub sessions_opened: u64,
    /// Session edits applied.
    pub session_edits: u64,
    /// Session solves executed (warm or replayed).
    pub session_solves: u64,
    /// Sweep periods skipped via carried refutations.
    pub reuse_periods_skipped: u64,
    /// Root LPs crash-started from a carried simplex basis.
    pub reuse_basis_hits: u64,
    /// IMS probes seeded from a still-valid previous schedule.
    pub reuse_ims_hint_hits: u64,
    /// CP no-good clauses replayed into warm solves.
    pub reuse_nogood_replays: u64,
    /// Exact replays served from session caches.
    pub reuse_replays: u64,
    /// Total nodes in edit-invalidated dependency cones.
    pub reuse_cone_nodes: u64,
    /// Whether a drain has begun.
    pub draining: bool,
}

impl StatsSnapshot {
    /// Sum of every classification counter — equals [`requests`] once
    /// the daemon is idle.
    ///
    /// [`requests`]: StatsSnapshot::requests
    pub fn classified_total(&self) -> u64 {
        self.ok
            + self.solved
            + self.cached
            + self.unscheduled
            + self.budget_exhausted
            + self.overloaded
            + self.cancelled
            + self.panics
            + self.bad_requests
            + self.internal_errors
    }

    /// Checks that every monotone counter is `>=` its value in an
    /// `earlier` snapshot, returning the first violation's field name.
    /// The gauges and the latch are exempt.
    pub fn monotone_regression_from(&self, earlier: &StatsSnapshot) -> Option<&'static str> {
        let pairs: [(&'static str, u64, u64); 23] = [
            ("requests", earlier.requests, self.requests),
            ("ok", earlier.ok, self.ok),
            ("solved", earlier.solved, self.solved),
            ("cached", earlier.cached, self.cached),
            ("unscheduled", earlier.unscheduled, self.unscheduled),
            (
                "budget_exhausted",
                earlier.budget_exhausted,
                self.budget_exhausted,
            ),
            ("overloaded", earlier.overloaded, self.overloaded),
            ("cancelled", earlier.cancelled, self.cancelled),
            ("panics", earlier.panics, self.panics),
            ("bad_requests", earlier.bad_requests, self.bad_requests),
            (
                "internal_errors",
                earlier.internal_errors,
                self.internal_errors,
            ),
            ("races", earlier.races, self.races),
            ("race_cp_wins", earlier.race_cp_wins, self.race_cp_wins),
            ("race_ilp_wins", earlier.race_ilp_wins, self.race_ilp_wins),
            (
                "sessions_opened",
                earlier.sessions_opened,
                self.sessions_opened,
            ),
            ("session_edits", earlier.session_edits, self.session_edits),
            (
                "session_solves",
                earlier.session_solves,
                self.session_solves,
            ),
            (
                "reuse_periods_skipped",
                earlier.reuse_periods_skipped,
                self.reuse_periods_skipped,
            ),
            (
                "reuse_basis_hits",
                earlier.reuse_basis_hits,
                self.reuse_basis_hits,
            ),
            (
                "reuse_ims_hint_hits",
                earlier.reuse_ims_hint_hits,
                self.reuse_ims_hint_hits,
            ),
            (
                "reuse_nogood_replays",
                earlier.reuse_nogood_replays,
                self.reuse_nogood_replays,
            ),
            ("reuse_replays", earlier.reuse_replays, self.reuse_replays),
            (
                "reuse_cone_nodes",
                earlier.reuse_cone_nodes,
                self.reuse_cone_nodes,
            ),
        ];
        pairs
            .iter()
            .find(|(_, a, b)| b < a)
            .map(|(name, _, _)| *name)
    }

    /// Writes the counters as flat fields onto a reply object.
    pub fn write_fields(&self, w: &mut ObjectWriter) {
        w.u64("requests", self.requests)
            .u64("ok", self.ok)
            .u64("solved", self.solved)
            .u64("cached", self.cached)
            .u64("unscheduled", self.unscheduled)
            .u64("budget_exhausted", self.budget_exhausted)
            .u64("overloaded", self.overloaded)
            .u64("cancelled", self.cancelled)
            .u64("panics", self.panics)
            .u64("bad_requests", self.bad_requests)
            .u64("internal_errors", self.internal_errors)
            .u64("in_flight", self.in_flight)
            .u64("queue_depth", self.queue_depth)
            .u64("replayed", self.replayed)
            .u64("races", self.races)
            .u64("race_cp_wins", self.race_cp_wins)
            .u64("race_ilp_wins", self.race_ilp_wins)
            .u64("sessions_opened", self.sessions_opened)
            .u64("session_edits", self.session_edits)
            .u64("session_solves", self.session_solves)
            .u64("reuse_periods_skipped", self.reuse_periods_skipped)
            .u64("reuse_basis_hits", self.reuse_basis_hits)
            .u64("reuse_ims_hint_hits", self.reuse_ims_hint_hits)
            .u64("reuse_nogood_replays", self.reuse_nogood_replays)
            .u64("reuse_replays", self.reuse_replays)
            .u64("reuse_cone_nodes", self.reuse_cone_nodes)
            .bool("draining", self.draining);
    }

    /// Reads the counters back from a parsed reply object; `None` when
    /// the object carries no counter fields (a non-stats reply).
    pub fn from_fields(m: &BTreeMap<String, JsonValue>) -> Option<StatsSnapshot> {
        let num = |k: &str| m.get(k).and_then(JsonValue::as_u64);
        Some(StatsSnapshot {
            requests: num("requests")?,
            ok: num("ok")?,
            solved: num("solved")?,
            cached: num("cached")?,
            unscheduled: num("unscheduled")?,
            budget_exhausted: num("budget_exhausted")?,
            overloaded: num("overloaded")?,
            cancelled: num("cancelled")?,
            panics: num("panics")?,
            bad_requests: num("bad_requests")?,
            internal_errors: num("internal_errors")?,
            in_flight: num("in_flight")?,
            queue_depth: num("queue_depth")?,
            replayed: num("replayed")?,
            races: num("races")?,
            race_cp_wins: num("race_cp_wins")?,
            race_ilp_wins: num("race_ilp_wins")?,
            sessions_opened: num("sessions_opened")?,
            session_edits: num("session_edits")?,
            session_solves: num("session_solves")?,
            reuse_periods_skipped: num("reuse_periods_skipped")?,
            reuse_basis_hits: num("reuse_basis_hits")?,
            reuse_ims_hint_hits: num("reuse_ims_hint_hits")?,
            reuse_nogood_replays: num("reuse_nogood_replays")?,
            reuse_replays: num("reuse_replays")?,
            reuse_cone_nodes: num("reuse_cone_nodes")?,
            draining: m.get("draining").and_then(JsonValue::as_bool)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_harness::json::parse_object;

    #[test]
    fn snapshot_round_trips_through_reply_fields() {
        let stats = SwpdStats::default();
        stats.count_request();
        stats.count_request();
        stats.count_reply(ReplyStatus::Solved);
        stats.count_reply(ReplyStatus::Overloaded);
        stats.set_queue_depth(3);
        stats.set_replayed(11);
        stats.set_draining();
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.classified_total(), 2);

        let mut w = ObjectWriter::new();
        snap.write_fields(&mut w);
        let m = parse_object(&w.finish()).expect("flat json");
        assert_eq!(StatsSnapshot::from_fields(&m), Some(snap));
        assert_eq!(StatsSnapshot::from_fields(&BTreeMap::new()), None);
    }

    #[test]
    fn race_counters_accumulate_and_round_trip() {
        let stats = SwpdStats::default();
        stats.record_races(&SolverStats::default()); // zero races: no-op
        let mut solver = SolverStats::default();
        solver.races = 3;
        solver.race_cp_wins = 2;
        solver.race_ilp_wins = 1;
        stats.record_races(&solver);
        let snap = stats.snapshot();
        assert_eq!(snap.races, 3);
        assert_eq!(snap.race_cp_wins, 2);
        assert_eq!(snap.race_ilp_wins, 1);

        let mut w = ObjectWriter::new();
        snap.write_fields(&mut w);
        let m = parse_object(&w.finish()).expect("flat json");
        assert_eq!(StatsSnapshot::from_fields(&m), Some(snap));
    }

    #[test]
    fn session_and_reuse_counters_accumulate_monotonically() {
        let stats = SwpdStats::default();
        stats.count_session_open();
        stats.count_session_edit();
        stats.count_session_edit();
        stats.count_session_solve();
        let mut delta = ReuseStats::default();
        delta.periods_skipped = 2;
        delta.basis_hits = 1;
        delta.ims_hint_hits = 3;
        delta.replays = 1;
        delta.cone_nodes = 5;
        let before = stats.snapshot();
        stats.record_reuse(&delta);
        let after = stats.snapshot();
        assert_eq!(after.sessions_opened, 1);
        assert_eq!(after.session_edits, 2);
        assert_eq!(after.session_solves, 1);
        assert_eq!(after.reuse_periods_skipped, 2);
        assert_eq!(after.reuse_basis_hits, 1);
        assert_eq!(after.reuse_ims_hint_hits, 3);
        assert_eq!(after.reuse_replays, 1);
        assert_eq!(after.reuse_cone_nodes, 5);
        assert_eq!(after.monotone_regression_from(&before), None);
        assert_eq!(
            before.monotone_regression_from(&after),
            Some("reuse_periods_skipped")
        );

        let mut w = ObjectWriter::new();
        after.write_fields(&mut w);
        let m = parse_object(&w.finish()).expect("flat json");
        assert_eq!(StatsSnapshot::from_fields(&m), Some(after));
    }

    #[test]
    fn monotone_check_flags_regressions_but_not_gauges() {
        let mut a = StatsSnapshot::default();
        a.solved = 5;
        a.in_flight = 9;
        let mut b = a;
        b.solved = 6;
        b.in_flight = 0; // gauge may fall
        assert_eq!(b.monotone_regression_from(&a), None);
        let mut c = b;
        c.cancelled = 0;
        c.solved = 4; // monotone counter fell
        assert_eq!(c.monotone_regression_from(&a), Some("solved"));
    }

    #[test]
    fn every_status_lands_in_its_own_counter() {
        let stats = SwpdStats::default();
        for s in [
            ReplyStatus::Ok,
            ReplyStatus::Solved,
            ReplyStatus::Cached,
            ReplyStatus::Unscheduled,
            ReplyStatus::BudgetExhausted,
            ReplyStatus::Overloaded,
            ReplyStatus::Cancelled,
            ReplyStatus::InternalPanic,
            ReplyStatus::BadRequest,
            ReplyStatus::InternalError,
        ] {
            stats.count_request();
            stats.count_reply(s);
        }
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 10);
        assert_eq!(snap.classified_total(), 10);
        assert_eq!(snap.panics, 1);
        assert_eq!(snap.cancelled, 1);
    }
}
