//! Daemon-hosted incremental solve sessions.
//!
//! A session (`POST /session`, op `session_open`) pins one parsed case
//! plus its [`SolveSession`] warm state — carried refutations, simplex
//! basis, schedule hint, CP no-goods, exact-replay cache — in daemon
//! memory. Edits (`POST /session/{id}/edit`) invalidate only the edit's
//! dependency cone worth of facts; solves (`POST /session/{id}/solve`)
//! then run warm, and every operation feeds its reuse-counter delta into
//! the daemon's monotone telemetry.
//!
//! Session operations run on the connection thread, not the worker
//! pool: a session's edits and solves are causally ordered per client,
//! so pipelining them through the queue would just reorder what the
//! protocol forbids reordering. Budgets, cancel-token registration (for
//! drain hard-stop), and panic isolation match the worker path.

use crate::proto::{Reply, ReplyStatus};
use crate::state::{lock, Shared};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use swp_core::{Optimality, ReuseStats, ScheduleError, SchedulerConfig, SolvedBy};
use swp_incr::{EditOp, SolveSession};
use swp_milp::CancelToken;

/// One hosted session plus the reuse totals already pushed to the
/// daemon counters (so each operation reports only its delta).
struct Hosted {
    session: SolveSession,
    reported: ReuseStats,
}

/// The daemon's capped, id-keyed session registry.
pub(crate) struct SessionStore {
    sessions: Mutex<HashMap<u64, Arc<Mutex<Hosted>>>>,
    next: AtomicU64,
}

impl fmt::Debug for SessionStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionStore")
            .field("live", &lock(&self.sessions).len())
            .finish()
    }
}

impl Default for SessionStore {
    fn default() -> Self {
        SessionStore {
            sessions: Mutex::new(HashMap::new()),
            next: AtomicU64::new(0),
        }
    }
}

impl SessionStore {
    fn get(&self, id: u64) -> Option<Arc<Mutex<Hosted>>> {
        lock(&self.sessions).get(&id).cloned()
    }
}

/// What a session's counters gained since `reported` (every `ReuseStats`
/// field is a lifetime total and monotone, so plain subtraction is the
/// delta).
fn reuse_delta(now: &ReuseStats, reported: &ReuseStats) -> ReuseStats {
    let mut d = ReuseStats::default();
    d.basis_hits = now.basis_hits - reported.basis_hits;
    d.basis_exports = now.basis_exports - reported.basis_exports;
    d.nogood_replays = now.nogood_replays - reported.nogood_replays;
    d.ims_hint_hits = now.ims_hint_hits - reported.ims_hint_hits;
    d.periods_skipped = now.periods_skipped - reported.periods_skipped;
    d.replays = now.replays - reported.replays;
    d.cone_nodes = now.cone_nodes - reported.cone_nodes;
    d
}

fn publish_reuse(shared: &Shared, hosted: &mut Hosted) {
    let now = hosted.session.reuse();
    shared
        .stats
        .record_reuse(&reuse_delta(&now, &hosted.reported));
    hosted.reported = now;
}

/// Handles `session_open`: parse, admit (capacity + drain), register.
pub(crate) fn open(shared: &Shared, id: &str, case: &str) -> Reply {
    if shared.draining.load(Ordering::Relaxed) {
        let mut r = Reply::error(id, ReplyStatus::Overloaded, "daemon is draining");
        r.retry_after_ms = Some(shared.retry_after_ms());
        return r;
    }
    let parsed = match swp_fuzz::parse_regression(id, case) {
        Ok(p) => p.case,
        Err(why) => return Reply::error(id, ReplyStatus::BadRequest, why),
    };
    let config = SchedulerConfig {
        time_limit_per_t: None,
        time_limit_total: None,
        ..SchedulerConfig::default()
    };
    let session = SolveSession::from_ddg(parsed.machine, config, &parsed.ddg);

    let store = &shared.sessions;
    let mut map = lock(&store.sessions);
    if map.len() >= shared.config.session_capacity {
        drop(map);
        let mut r = Reply::error(
            id,
            ReplyStatus::Overloaded,
            format!(
                "session capacity ({}) reached; close a session first",
                shared.config.session_capacity
            ),
        );
        r.retry_after_ms = Some(shared.retry_after_ms());
        return r;
    }
    let handle = store.next.fetch_add(1, Ordering::Relaxed);
    let mut reply = Reply::status(id, ReplyStatus::Ok);
    reply.session = Some(handle);
    reply.nodes = Some(session.num_nodes() as u64);
    reply.edges = Some(session.num_edges() as u64);
    map.insert(
        handle,
        Arc::new(Mutex::new(Hosted {
            session,
            reported: ReuseStats::default(),
        })),
    );
    drop(map);
    shared.stats.count_session_open();
    reply
}

/// Handles `session_edit`: apply one DDG edit, report the invalidated
/// cone size and the new shape.
pub(crate) fn edit(shared: &Shared, id: &str, handle: u64, op: &EditOp) -> Reply {
    let Some(hosted) = shared.sessions.get(handle) else {
        return Reply::error(
            id,
            ReplyStatus::BadRequest,
            format!("unknown session {handle}"),
        );
    };
    let mut hosted = lock(&hosted);
    match hosted.session.apply(op) {
        Ok(cone) => {
            shared.stats.count_session_edit();
            publish_reuse(shared, &mut hosted);
            let mut r = Reply::status(id, ReplyStatus::Ok);
            r.session = Some(handle);
            r.cone = Some(cone as u64);
            r.nodes = Some(hosted.session.num_nodes() as u64);
            r.edges = Some(hosted.session.num_edges() as u64);
            r
        }
        Err(e) => Reply::error(id, ReplyStatus::BadRequest, e.to_string()),
    }
}

/// Handles `session_solve`: solve the session's current instance warm,
/// under a budget carved exactly like a worker solve's.
pub(crate) fn solve(
    shared: &Shared,
    id: &str,
    handle: u64,
    ticks: Option<u64>,
    timeout_ms: Option<u64>,
    cancel: &CancelToken,
) -> Reply {
    let Some(hosted) = shared.sessions.get(handle) else {
        return Reply::error(
            id,
            ReplyStatus::BadRequest,
            format!("unknown session {handle}"),
        );
    };
    if shared.hard_drain.load(Ordering::Relaxed) || cancel.is_cancelled() {
        return Reply::error(id, ReplyStatus::Cancelled, "cancelled before solve");
    }

    // Admission mirrors the worker path: a drained global pool refuses
    // up front; an unlimited pool gives the request an isolated counter.
    let workers = shared.config.workers.max(1) as u64;
    let share = match shared.admission.try_slice(workers) {
        Ok(b) => b,
        Err(e) => {
            return Reply::error(
                id,
                ReplyStatus::BudgetExhausted,
                format!("admission pool: {e}"),
            )
        }
    };
    let mut budget = if shared.config.admission_ticks.is_some() {
        share
    } else {
        share.fork_isolated()
    };
    if let Some(t) = ticks {
        budget = budget.limit_ticks(t);
    }
    let timeout_ms = timeout_ms
        .unwrap_or(shared.config.default_timeout_ms)
        .min(shared.config.max_timeout_ms);
    budget = budget
        .deadline_in(Duration::from_millis(timeout_ms))
        .cancelled_by(cancel);

    // Register for the drain hard-stop, exactly like a queued job.
    let seq = shared.alloc_seq();
    lock(&shared.inflight).insert(seq, cancel.clone());
    shared.stats.enter_flight();

    let mut hosted = lock(&hosted);
    let ticks_before = budget.ticks_used();
    let started = Instant::now();
    let solved = {
        let hosted = &mut *hosted;
        catch_unwind(AssertUnwindSafe(|| hosted.session.solve_with(&budget)))
    };
    let solve_time = started.elapsed();
    let used = budget.ticks_used().saturating_sub(ticks_before);

    shared.stats.leave_flight();
    shared.deregister(seq);
    shared.observe_solve_us(solve_time.as_micros() as u64);
    shared.stats.count_session_solve();

    let base = |status: ReplyStatus| {
        let mut r = Reply::status(id, status);
        r.session = Some(handle);
        r.ticks = Some(used);
        r.solve_us = Some(solve_time.as_micros() as u64);
        r
    };
    let reply = match solved {
        Err(payload) => {
            let why = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("solve panicked");
            let mut r = base(ReplyStatus::InternalPanic);
            r.error = Some(why.to_string());
            r
        }
        Ok(Ok(result)) => {
            let mut r = base(match result.optimality {
                Optimality::Proven => ReplyStatus::Solved,
                Optimality::BudgetExhausted { .. } => ReplyStatus::BudgetExhausted,
            });
            r.period = Some(result.schedule.initiation_interval());
            r.t_lb = Some(result.t_lb());
            r.slack = Some(result.slack_above_lb());
            r.proven = Some(result.is_proven_optimal());
            r.solved_by = Some(
                match result.solved_by() {
                    SolvedBy::Ilp => "ilp",
                    SolvedBy::Cp => "cp",
                    SolvedBy::Heuristic => "heuristic",
                }
                .to_string(),
            );
            r
        }
        Ok(Err(e)) => match e {
            ScheduleError::Cancelled => base(ReplyStatus::Cancelled),
            ScheduleError::NotFound { t_lb, attempts, .. } => {
                let stats = swp_core::SolverStats::from_attempts(&attempts);
                if stats.timeouts > 0 || stats.engine_failures > 0 {
                    let mut r = base(ReplyStatus::BudgetExhausted);
                    r.t_lb = Some(t_lb);
                    r.error = Some("budget ran out before any period was settled".to_string());
                    r
                } else {
                    let mut r = base(ReplyStatus::Unscheduled);
                    r.t_lb = Some(t_lb);
                    r.proven = Some(false);
                    r
                }
            }
            ScheduleError::NoFinitePeriod => {
                let mut r = base(ReplyStatus::Unscheduled);
                r.error = Some(e.to_string());
                r
            }
            other => {
                let mut r = base(ReplyStatus::InternalError);
                r.error = Some(other.to_string());
                r
            }
        },
    };
    publish_reuse(shared, &mut hosted);
    reply
}

/// Handles `session_close`.
pub(crate) fn close(shared: &Shared, id: &str, handle: u64) -> Reply {
    match lock(&shared.sessions.sessions).remove(&handle) {
        Some(_) => {
            let mut r = Reply::status(id, ReplyStatus::Ok);
            r.session = Some(handle);
            r
        }
        None => Reply::error(
            id,
            ReplyStatus::BadRequest,
            format!("unknown session {handle}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_delta_subtracts_fieldwise() {
        let mut now = ReuseStats::default();
        now.basis_hits = 5;
        now.periods_skipped = 3;
        now.cone_nodes = 7;
        let mut reported = ReuseStats::default();
        reported.basis_hits = 2;
        reported.cone_nodes = 7;
        let d = reuse_delta(&now, &reported);
        assert_eq!(d.basis_hits, 3);
        assert_eq!(d.periods_skipped, 3);
        assert_eq!(d.cone_nodes, 0);
    }
}
