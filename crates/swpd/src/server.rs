//! The daemon itself: accept loop, per-connection threads, dispatch,
//! and the drain protocol.
//!
//! # Connection model
//!
//! One thread accepts; each connection gets a reader thread (this one)
//! plus a writer thread fed by an mpsc channel of replies, so slow
//! solves never block the read side and replies stream out in
//! completion order (clients correlate by `id`). The first bytes decide
//! the transport: `POST ` / `GET ` means HTTP/1.1 (one request per
//! connection, `Connection: close`), anything else is raw JSONL with
//! pipelining.
//!
//! # Disconnect → cancellation
//!
//! The reader owns a clone of every cancel token it enqueued. EOF or a
//! read error fires them all; in-flight solves for that connection stop
//! at their next budget check and classify as `cancelled`. Finished
//! tokens are inert, so firing the whole list is harmless.
//!
//! # Drain
//!
//! `shutdown` (request or [`DaemonHandle::shutdown`]) latches
//! `draining`: admission starts refusing (`overloaded`), the acceptor
//! is unblocked by a connect-to-self and exits, workers run the queue
//! dry and return. A grace timer then latches `hard_drain` and fires
//! every in-flight token, bounding the drain by `drain_grace` even if a
//! solve would run for hours. Joining the handle flushes nothing extra:
//! the artifact was flushed per record all along (crash-only design).

use crate::proto::{Reply, ReplyStatus, Request};
use crate::session;
use crate::state::{DaemonConfig, Job, Shared};
use crate::worker::worker_loop;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;
use swp_milp::CancelToken;

/// Factory for running daemons.
#[derive(Debug)]
pub struct Daemon;

/// A running daemon. Dropping the handle does *not* stop the daemon;
/// call [`shutdown`](DaemonHandle::shutdown) (or send a `shutdown`
/// request) and then [`wait`](DaemonHandle::wait).
#[derive(Debug)]
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Binds, replays the artifact if resuming, and starts the worker
    /// pool and accept loop.
    ///
    /// # Errors
    ///
    /// Any I/O error binding the listener or opening the artifact.
    pub fn start(config: DaemonConfig) -> io::Result<DaemonHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared::new(config)?);

        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("swpd-worker-{i}"))
                    .spawn(move || worker_loop(shared))
            })
            .collect::<io::Result<Vec<_>>>()?;

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("swpd-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &shared, addr))?
        };

        Ok(DaemonHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl DaemonHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A local (not over-the-wire) telemetry snapshot.
    pub fn stats(&self) -> crate::stats::StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Begins a graceful drain, waits for it to complete, and returns
    /// the final counters.
    pub fn shutdown(mut self) -> crate::stats::StatsSnapshot {
        begin_drain(&self.shared, self.addr);
        self.join()
    }

    /// Waits for a drain begun elsewhere (e.g. a remote `shutdown`
    /// request) to complete, and returns the final counters.
    pub fn wait(mut self) -> crate::stats::StatsSnapshot {
        self.join()
    }

    fn join(&mut self) -> crate::stats::StatsSnapshot {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.stats.snapshot()
    }
}

/// Latches the drain flags (idempotently), wakes every sleeping worker,
/// unblocks the acceptor, and arms the hard-cancel grace timer.
pub(crate) fn begin_drain(shared: &Arc<Shared>, addr: SocketAddr) {
    if shared.draining.swap(true, Ordering::Relaxed) {
        return; // someone already started the drain
    }
    shared.stats.set_draining();
    shared.queue_cv.notify_all();
    // Unblock `accept()` — no signals available (and none wanted: the
    // protocol is the only control surface), so connect to ourselves.
    let _ = TcpStream::connect(addr);
    let shared = Arc::clone(shared);
    let _ = thread::Builder::new()
        .name("swpd-drain-grace".to_string())
        .spawn(move || {
            thread::sleep(shared.config.drain_grace);
            shared.hard_drain.store(true, Ordering::Relaxed);
            shared.cancel_all_inflight();
            shared.queue_cv.notify_all();
        });
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, addr: SocketAddr) {
    for conn in listener.incoming() {
        if shared.draining.load(Ordering::Relaxed) {
            return;
        }
        match conn {
            Ok(stream) => {
                let shared = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name("swpd-conn".to_string())
                    .spawn(move || handle_conn(&shared, stream, addr));
                if let Err(e) = spawned {
                    eprintln!("swpd: failed to spawn connection thread: {e}");
                }
            }
            Err(e) => {
                eprintln!("swpd: accept failed: {e}");
                // A transient accept error must not spin-loop hot.
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream, addr: SocketAddr) {
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("swpd: connection clone failed: {e}");
            return;
        }
    };
    let mut reader = BufReader::new(reader_stream);
    let mut first = String::new();
    if reader.read_line(&mut first).unwrap_or(0) == 0 {
        return; // immediate EOF (e.g. the drain's self-connect)
    }
    if first.starts_with("POST ") || first.starts_with("GET ") {
        handle_http(shared, stream, reader, &first, addr);
    } else {
        handle_jsonl(shared, stream, reader, first, addr);
    }
}

/// Raw JSONL: pipelined requests in, completion-ordered replies out.
fn handle_jsonl(
    shared: &Arc<Shared>,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    first: String,
    addr: SocketAddr,
) {
    let (tx, rx) = channel::<Reply>();
    let writer = thread::Builder::new()
        .name("swpd-conn-writer".to_string())
        .spawn(move || jsonl_writer(stream, &rx));
    let mut tokens: Vec<CancelToken> = Vec::new();

    let mut lines = std::iter::once(Ok(first)).chain(reader.lines());
    loop {
        let line = match lines.next() {
            Some(Ok(l)) => l,
            _ => break, // EOF or read error: client gone
        };
        if line.trim().is_empty() {
            continue;
        }
        dispatch(shared, line.trim(), &tx, &mut tokens, addr);
    }
    // Disconnect: cancel everything this connection still has in
    // flight. Completed solves' tokens are inert.
    for t in &tokens {
        t.cancel();
    }
    drop(tx);
    if let Ok(w) = writer {
        let _ = w.join();
    }
}

fn jsonl_writer(stream: TcpStream, rx: &Receiver<Reply>) {
    let mut out = io::BufWriter::new(stream);
    while let Ok(reply) = rx.recv() {
        let line = reply.to_json_line();
        if out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .and_then(|()| out.flush())
            .is_err()
        {
            return; // peer gone; replies are already classified
        }
    }
}

/// Routes one request line. Solve requests are enqueued (their reply
/// arrives later through `tx`); everything else is answered inline.
fn dispatch(
    shared: &Arc<Shared>,
    line: &str,
    tx: &Sender<Reply>,
    tokens: &mut Vec<CancelToken>,
    addr: SocketAddr,
) {
    dispatch_parsed(shared, Request::from_json_line(line), tx, tokens, addr);
}

/// Routes one already-parsed (or parse-failed) request. Split from
/// [`dispatch`] so the HTTP front door can inject the op and session
/// handle its path already names.
fn dispatch_parsed(
    shared: &Arc<Shared>,
    req: Result<Request, String>,
    tx: &Sender<Reply>,
    tokens: &mut Vec<CancelToken>,
    addr: SocketAddr,
) {
    shared.stats.count_request();
    let req = match req {
        Ok(r) => r,
        Err(why) => {
            shared.finish(tx, Reply::error("", ReplyStatus::BadRequest, why));
            return;
        }
    };
    match req {
        Request::Ping { id } => shared.finish(tx, Reply::status(id, ReplyStatus::Ok)),
        Request::Stats { id } => {
            // Classify this request *before* snapshotting so the
            // returned counters satisfy `requests == classified_total`
            // at idle (the snapshot must include itself).
            shared.stats.count_reply(ReplyStatus::Ok);
            let mut r = Reply::status(id, ReplyStatus::Ok);
            r.counters = Some(shared.stats.snapshot());
            let _ = tx.send(r);
        }
        Request::Shutdown { id } => {
            shared.finish(tx, Reply::status(id, ReplyStatus::Ok));
            begin_drain(shared, addr);
        }
        Request::SessionOpen { id, case } => {
            shared.finish(tx, session::open(shared, &id, &case));
        }
        Request::SessionEdit {
            id,
            session: handle,
            edit,
        } => {
            shared.finish(tx, session::edit(shared, &id, handle, &edit));
        }
        Request::SessionSolve {
            id,
            session: handle,
            ticks,
            timeout_ms,
        } => {
            // Runs inline on this thread (session ops are causally
            // ordered per client), but registers a cancel token so a
            // drain hard-stop still interrupts it.
            let cancel = CancelToken::new();
            tokens.push(cancel.clone());
            shared.finish(
                tx,
                session::solve(shared, &id, handle, ticks, timeout_ms, &cancel),
            );
        }
        Request::SessionClose {
            id,
            session: handle,
        } => {
            shared.finish(tx, session::close(shared, &id, handle));
        }
        Request::Solve(solve) => {
            if solve.inject_panic && !shared.config.allow_fault_injection {
                shared.finish(
                    tx,
                    Reply::error(
                        solve.id,
                        ReplyStatus::BadRequest,
                        "fault injection is disabled on this daemon",
                    ),
                );
                return;
            }
            let cancel = CancelToken::new();
            let job = Job {
                seq: shared.alloc_seq(),
                req: solve,
                reply_to: tx.clone(),
                cancel: cancel.clone(),
            };
            match shared.enqueue(job) {
                Ok(()) => tokens.push(cancel),
                Err(refusal) => shared.finish(tx, refusal),
            }
        }
    }
}

/// Minimal HTTP/1.1 front door: one request per connection.
///
/// Routes: `POST /solve` (body = the JSON request object, `op`
/// optional), `POST /session`, `POST /session/{id}/edit`,
/// `POST /session/{id}/solve`, `POST /session/{id}/close`,
/// `POST /shutdown`, `GET /stats`, `GET /health`. Status
/// codes follow [`ReplyStatus::http_code`] — notably `429` for
/// `overloaded`, which is what off-the-shelf HTTP clients expect from
/// load shedding.
fn handle_http(
    shared: &Arc<Shared>,
    stream: TcpStream,
    mut reader: BufReader<TcpStream>,
    request_line: &str,
    addr: SocketAddr,
) {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    // Headers: only Content-Length matters to us.
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            return;
        }
        let line = line.trim();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 && reader.read_exact(&mut body).is_err() {
        return;
    }
    let body = String::from_utf8_lossy(&body).into_owned();

    let reply = match (method, path) {
        ("GET", "/health") => {
            shared.stats.count_request();
            let mut r = Reply::status("health", ReplyStatus::Ok);
            shared.stats.count_reply(r.status);
            r.error = None;
            r
        }
        ("GET", "/stats") => {
            shared.stats.count_request();
            // Classified before snapshotting — see the JSONL stats path.
            shared.stats.count_reply(ReplyStatus::Ok);
            let mut r = Reply::status("stats", ReplyStatus::Ok);
            r.counters = Some(shared.stats.snapshot());
            r
        }
        ("POST", "/shutdown") => {
            shared.stats.count_request();
            let r = Reply::status("shutdown", ReplyStatus::Ok);
            shared.stats.count_reply(r.status);
            begin_drain(shared, addr);
            r
        }
        ("POST", "/solve") => {
            let (tx, rx) = channel::<Reply>();
            let mut tokens = Vec::new();
            dispatch(shared, &body, &tx, &mut tokens, addr);
            wait_for_reply(&rx, &stream, &tokens)
        }
        ("POST", p) if p == "/session" || p.starts_with("/session/") => {
            let (tx, rx) = channel::<Reply>();
            let mut tokens = Vec::new();
            let body = if body.trim().is_empty() {
                "{}".to_string()
            } else {
                body
            };
            let req = route_session(p, &body);
            dispatch_parsed(shared, req, &tx, &mut tokens, addr);
            wait_for_reply(&rx, &stream, &tokens)
        }
        _ => {
            shared.stats.count_request();
            let r = Reply::error(
                "",
                ReplyStatus::BadRequest,
                format!("no route {method} {path}"),
            );
            shared.stats.count_reply(r.status);
            r
        }
    };

    let body = reply.to_json_line();
    let code = reply.status.http_code();
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        429 => "Too Many Requests",
        499 => "Client Closed Request",
        _ => "Internal Server Error",
    };
    let response = format!(
        "HTTP/1.1 {code} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}\n",
        body.len() + 1
    );
    let mut stream = stream;
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Maps a `/session[/{id}/{action}]` path plus body to a parsed
/// request: `POST /session` opens, `POST /session/{id}/edit` edits,
/// `POST /session/{id}/solve` solves, `POST /session/{id}/close`
/// closes. The path supplies the op and session handle; the body
/// supplies the rest.
fn route_session(path: &str, body: &str) -> Result<Request, String> {
    if path == "/session" {
        return Request::from_json_line_with(body, "session_open", None);
    }
    let rest = path.trim_start_matches("/session/");
    let mut parts = rest.split('/');
    let handle: u64 = parts
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| format!("bad session id in path `{path}`"))?;
    let op = match parts.next() {
        Some("edit") => "session_edit",
        Some("solve") => "session_solve",
        Some("close") => "session_close",
        _ => return Err(format!("no route POST {path}")),
    };
    Request::from_json_line_with(body, op, Some(handle))
}

/// Waits for the solve reply while watching the socket for a client
/// disconnect, which fires the request's cancel token. The solve always
/// replies (classification is total), so this loop always terminates.
fn wait_for_reply(rx: &Receiver<Reply>, stream: &TcpStream, tokens: &[CancelToken]) -> Reply {
    let mut probe = [0u8; 1];
    let mut watch = stream.try_clone().ok();
    if let Some(s) = &watch {
        let _ = s.set_read_timeout(Some(Duration::from_millis(50)));
    }
    loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(reply) => return reply,
            Err(RecvTimeoutError::Disconnected) => {
                // Refused at admission: dispatch already sent through tx
                // before dropping it — can't happen after Ok, but keep a
                // total answer.
                return Reply::error("", ReplyStatus::InternalError, "reply channel closed");
            }
            Err(RecvTimeoutError::Timeout) => {
                if let Some(s) = &mut watch {
                    match s.read(&mut probe) {
                        Ok(0) => {
                            // EOF: the client hung up mid-solve.
                            for t in tokens {
                                t.cancel();
                            }
                            watch = None; // stop probing; just await the reply
                        }
                        Ok(_) => {} // pipelined garbage; ignore
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut => {}
                        Err(_) => {
                            for t in tokens {
                                t.cancel();
                            }
                            watch = None;
                        }
                    }
                }
            }
        }
    }
}
