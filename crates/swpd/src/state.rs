//! Daemon configuration and the state shared by every thread.
//!
//! One [`Shared`] instance is the whole daemon: the bounded request
//! queue with its condition variable, the global admission [`Budget`]
//! pool, the in-flight cancel-token registry (so a drain can
//! hard-cancel everything), the result cache with its append-only JSONL
//! artifact, and the telemetry counters. Connection threads push
//! [`Job`]s in; worker threads pop them out; nobody else holds state.

use crate::proto::{Reply, ReplyStatus, SolveRequest};
use crate::session::SessionStore;
use crate::stats::SwpdStats;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;
use swp_harness::{JsonlSink, ResultCache};
use swp_milp::{Budget, CancelToken};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Solver worker threads.
    pub workers: usize,
    /// Bounded queue capacity; a full queue load-sheds with
    /// `overloaded`. Zero means "never queue" (useful in tests).
    pub queue_capacity: usize,
    /// JSONL artifact path; `None` disables persistence (and therefore
    /// crash recovery — the cache is then memory-only).
    pub artifact: Option<PathBuf>,
    /// Replay an existing artifact into the cache at startup and append
    /// to it, instead of truncating.
    pub resume: bool,
    /// Global admission pool tick cap; `None` leaves the pool
    /// unlimited. When set, every solve drains this one pool and a
    /// drained pool refuses admission (`budget_exhausted`).
    pub admission_ticks: Option<u64>,
    /// Deadline applied when a request carries no `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Upper clamp on client-supplied `timeout_ms`.
    pub max_timeout_ms: u64,
    /// How long a drain waits for in-flight solves before hard-
    /// cancelling them.
    pub drain_grace: Duration,
    /// Allow `panic` fault injection in requests (load tests only).
    pub allow_fault_injection: bool,
    /// Most incremental solve sessions held open at once; opening past
    /// the cap load-sheds with `overloaded`.
    pub session_capacity: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            artifact: None,
            resume: false,
            admission_ticks: None,
            default_timeout_ms: 10_000,
            max_timeout_ms: 120_000,
            drain_grace: Duration::from_secs(5),
            allow_fault_injection: false,
            session_capacity: 16,
        }
    }
}

/// One queued solve. The reply channel leads back to the owning
/// connection's writer; the token is fired by that connection on
/// disconnect, or by the drain supervisor on hard cancel.
#[derive(Debug)]
pub(crate) struct Job {
    /// Daemon-unique sequence number (doubles as the artifact record
    /// index).
    pub seq: u64,
    /// The request.
    pub req: SolveRequest,
    /// Where the classified reply goes. A send failure means the
    /// connection is gone; replies are then dropped silently (the
    /// classification counters have already recorded the outcome).
    pub reply_to: Sender<Reply>,
    /// Cancels this solve.
    pub cancel: CancelToken,
}

/// Everything the daemon's threads share.
#[derive(Debug)]
pub(crate) struct Shared {
    pub config: DaemonConfig,
    pub stats: SwpdStats,
    pub queue: Mutex<VecDeque<Job>>,
    pub queue_cv: Condvar,
    /// Latched by shutdown: stop accepting, let workers run the queue
    /// dry and exit.
    pub draining: AtomicBool,
    /// Latched `drain_grace` after `draining`: queued jobs are answered
    /// `cancelled` instead of solved.
    pub hard_drain: AtomicBool,
    pub cache: Mutex<ResultCache>,
    pub artifact: Option<Mutex<JsonlSink>>,
    /// The global admission pool every per-request budget is sliced
    /// from.
    pub admission: Budget,
    /// Cancel tokens of queued + in-flight solves, by `seq`.
    pub inflight: Mutex<HashMap<u64, CancelToken>>,
    /// Open incremental solve sessions.
    pub sessions: SessionStore,
    pub next_seq: AtomicU64,
    /// EWMA of recent solve times in microseconds; feeds the
    /// `retry_after_ms` hint.
    pub avg_solve_us: AtomicU64,
}

/// Locks a mutex, tolerating poisoning: a panicked holder must not take
/// the daemon down with it (panic isolation is the whole point).
pub(crate) fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Shared {
    /// Builds the shared state, loading (or creating) the artifact.
    pub fn new(config: DaemonConfig) -> io::Result<Shared> {
        let cache = match (&config.artifact, config.resume) {
            (Some(path), true) => ResultCache::load(path)?,
            _ => ResultCache::empty(),
        };
        let artifact = match &config.artifact {
            Some(path) => Some(Mutex::new(if config.resume {
                JsonlSink::append(path)?
            } else {
                JsonlSink::create(path)?
            })),
            None => None,
        };
        let admission = match config.admission_ticks {
            Some(t) => Budget::with_tick_limit(t),
            None => Budget::unlimited(),
        };
        let stats = SwpdStats::default();
        stats.set_replayed(cache.len() as u64);
        Ok(Shared {
            config,
            stats,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            hard_drain: AtomicBool::new(false),
            cache: Mutex::new(cache),
            artifact,
            admission,
            inflight: Mutex::new(HashMap::new()),
            sessions: SessionStore::default(),
            next_seq: AtomicU64::new(0),
            avg_solve_us: AtomicU64::new(0),
        })
    }

    /// Classifies and sends a reply. The single funnel through which
    /// every reply leaves the daemon — guarantees each request is
    /// counted exactly once.
    pub fn finish(&self, reply_to: &Sender<Reply>, reply: Reply) {
        self.stats.count_reply(reply.status);
        // The connection may already be gone; the classification above
        // is the durable part.
        let _ = reply_to.send(reply);
    }

    /// Tries to enqueue a solve. On admission the job's token is
    /// registered in the in-flight map; on refusal an `overloaded`
    /// reply (with a backoff hint) is produced instead.
    pub fn enqueue(&self, job: Job) -> Result<(), Reply> {
        if self.draining.load(Ordering::Relaxed) {
            let mut r = Reply::error(job.req.id, ReplyStatus::Overloaded, "daemon is draining");
            r.retry_after_ms = Some(self.retry_after_ms());
            return Err(r);
        }
        let mut q = lock(&self.queue);
        if q.len() >= self.config.queue_capacity {
            // Compute the hint from the already-held guard: calling
            // retry_after_ms() here would re-lock the queue and
            // self-deadlock.
            let hint = self.retry_hint_for_depth(q.len() as u64);
            drop(q);
            let mut r = Reply::error(job.req.id, ReplyStatus::Overloaded, "queue full");
            r.retry_after_ms = Some(hint);
            return Err(r);
        }
        lock(&self.inflight).insert(job.seq, job.cancel.clone());
        q.push_back(job);
        self.stats.set_queue_depth(q.len() as u64);
        drop(q);
        self.queue_cv.notify_one();
        Ok(())
    }

    /// The load-shedding backoff hint: roughly "queue drain time per
    /// worker", from the observed solve-time EWMA, clamped to a sane
    /// range so cold daemons and pathological solves both stay useful.
    pub fn retry_after_ms(&self) -> u64 {
        let depth = lock(&self.queue).len() as u64;
        self.retry_hint_for_depth(depth)
    }

    fn retry_hint_for_depth(&self, depth: u64) -> u64 {
        let avg_ms = (self.avg_solve_us.load(Ordering::Relaxed) / 1000).clamp(5, 2_000);
        let workers = self.config.workers.max(1) as u64;
        ((depth + 1).saturating_mul(avg_ms) / workers).clamp(5, 5_000)
    }

    /// Folds one solve time into the EWMA (racy read-modify-write is
    /// fine: this feeds a hint, not an invariant).
    pub fn observe_solve_us(&self, us: u64) {
        let old = self.avg_solve_us.load(Ordering::Relaxed);
        let new = if old == 0 { us } else { (old * 7 + us) / 8 };
        self.avg_solve_us.store(new, Ordering::Relaxed);
    }

    /// Fires every registered cancel token (drain hard-stop).
    pub fn cancel_all_inflight(&self) {
        for token in lock(&self.inflight).values() {
            token.cancel();
        }
    }

    /// Removes a finished solve's token from the registry.
    pub fn deregister(&self, seq: u64) {
        lock(&self.inflight).remove(&seq);
    }

    /// Allocates the next request sequence number.
    pub fn alloc_seq(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn job(shared: &Shared, id: &str) -> Job {
        let (tx, _rx) = channel();
        Job {
            seq: shared.alloc_seq(),
            req: SolveRequest::new(id, "case"),
            reply_to: tx,
            cancel: CancelToken::new(),
        }
    }

    #[test]
    fn bounded_queue_sheds_load_with_a_retry_hint() {
        let shared = Shared::new(DaemonConfig {
            queue_capacity: 2,
            ..DaemonConfig::default()
        })
        .expect("no artifact, no io");
        assert!(shared.enqueue(job(&shared, "a")).is_ok());
        assert!(shared.enqueue(job(&shared, "b")).is_ok());
        let refused = shared.enqueue(job(&shared, "c")).expect_err("queue full");
        assert_eq!(refused.status, ReplyStatus::Overloaded);
        assert!(refused.retry_after_ms.is_some());
        assert_eq!(refused.id, "c");
        assert_eq!(
            lock(&shared.inflight).len(),
            2,
            "refused job never registers"
        );
        assert_eq!(shared.stats.snapshot().queue_depth, 2);
    }

    #[test]
    fn draining_daemon_refuses_admission() {
        let shared = Shared::new(DaemonConfig::default()).expect("no io");
        shared.draining.store(true, Ordering::Relaxed);
        let refused = shared.enqueue(job(&shared, "late")).expect_err("draining");
        assert_eq!(refused.status, ReplyStatus::Overloaded);
        assert!(refused.error.as_deref().unwrap_or("").contains("draining"));
    }

    #[test]
    fn cancel_all_inflight_fires_every_registered_token() {
        let shared = Shared::new(DaemonConfig::default()).expect("no io");
        let j1 = job(&shared, "x");
        let j2 = job(&shared, "y");
        let (t1, t2) = (j1.cancel.clone(), j2.cancel.clone());
        shared.enqueue(j1).expect("fits");
        shared.enqueue(j2).expect("fits");
        shared.cancel_all_inflight();
        assert!(t1.is_cancelled() && t2.is_cancelled());
        shared.deregister(0);
        assert_eq!(lock(&shared.inflight).len(), 1);
    }

    #[test]
    fn retry_hint_scales_with_queue_depth_and_stays_clamped() {
        let shared = Shared::new(DaemonConfig {
            workers: 2,
            queue_capacity: 1000,
            ..DaemonConfig::default()
        })
        .expect("no io");
        let empty_hint = shared.retry_after_ms();
        assert!((5..=5_000).contains(&empty_hint));
        shared.observe_solve_us(40_000); // 40 ms solves
        for i in 0..10 {
            shared
                .enqueue(job(&shared, &format!("j{i}")))
                .expect("fits");
        }
        let deep_hint = shared.retry_after_ms();
        assert!(deep_hint >= empty_hint);
        assert!(deep_hint <= 5_000);
        shared.observe_solve_us(u64::MAX / 2); // pathological EWMA input
        assert!(shared.retry_after_ms() <= 5_000);
    }
}
