//! Pairwise modulo collision matrices.
//!
//! For a period `T`, class `r`'s **cyclic conflict vector** `C_r` has
//! bit `d` set iff two operations of class `r` issued `d (mod T)` apart
//! on the *same* physical unit occupy some pipeline stage in the same
//! cycle. Formally, with `L_s` the marked offsets of stage `s`:
//!
//! ```text
//! C_r[d] = 1  ⇔  ∃ s, l1 ∈ L_s, l2 ∈ L_s :  l1 − l2 ≡ d (mod T)
//! ```
//!
//! Taking `l1 = l2` shows bit 0 is always set for a non-empty table
//! (two distinct operations at the same residue always collide), and
//! swapping `l1`/`l2` shows `C_r` is symmetric under negation mod `T`.
//!
//! The full pairwise matrix `M[a][b][d]` of the issue spec degenerates:
//! units are per-class in this machine model, so operations of distinct
//! classes never share a physical unit and every off-diagonal entry is
//! `false`. [`CollisionMatrix::collides`] keeps the two-class signature
//! for that reason, but only the diagonal stores bits.

use crate::bits;
use swp_ddg::OpClass;
use swp_machine::Machine;

/// All per-class cyclic conflict vectors of one machine at one period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollisionMatrix {
    period: u32,
    /// `conflict[class]` is the packed conflict vector `C_class`.
    conflict: Vec<Box<[u64]>>,
    /// Whether a *single* operation of this class collides with its own
    /// periodic repetitions at this period (`!modulo_feasible`): the
    /// class cannot be scheduled at all at this `T`.
    self_collides: Vec<bool>,
}

impl CollisionMatrix {
    /// Builds the conflict vectors of every class of `machine` at
    /// `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` (no modulo schedule has period zero).
    pub fn build(machine: &Machine, period: u32) -> Self {
        assert!(period > 0, "collision matrix needs a positive period");
        let words = bits::words_for(period);
        let mut conflict = Vec::with_capacity(machine.num_classes());
        let mut self_collides = Vec::with_capacity(machine.num_classes());
        for t in machine.types() {
            let rt = &t.reservation;
            let mut c = vec![0u64; words].into_boxed_slice();
            for s in 0..rt.stages() {
                let offs = rt.stage_offsets(s);
                for &l1 in &offs {
                    for &l2 in &offs {
                        let d = (l1 as i64 - l2 as i64).rem_euclid(i64::from(period));
                        bits::set(&mut c, d as u32);
                    }
                }
            }
            conflict.push(c);
            self_collides.push(!rt.modulo_feasible(period));
        }
        CollisionMatrix {
            period,
            conflict,
            self_collides,
        }
    }

    /// The period this matrix was compiled for.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Number of classes covered.
    pub fn num_classes(&self) -> usize {
        self.conflict.len()
    }

    /// Whether two operations of classes `a` and `b` on the same
    /// physical unit, issued `delta` cycles apart (any integer distance;
    /// reduced mod `T` here), collide on some stage.
    ///
    /// Returns `None` if either class is outside this machine.
    #[inline]
    pub fn collides(&self, a: OpClass, b: OpClass, delta: u32) -> Option<bool> {
        if a.index() >= self.conflict.len() || b.index() >= self.conflict.len() {
            return None;
        }
        if a != b {
            // Distinct classes never share a unit in this machine model.
            return Some(false);
        }
        Some(bits::test(&self.conflict[a.index()], delta % self.period))
    }

    /// Whether one operation of `class` collides with its own periodic
    /// repetitions (the class is infeasible at this period).
    pub fn self_collides(&self, class: OpClass) -> Option<bool> {
        self.self_collides.get(class.index()).copied()
    }

    /// The packed conflict vector of `class` (one bit per residue).
    pub(crate) fn conflict_vector(&self, class_index: usize) -> &[u64] {
        &self.conflict[class_index]
    }

    /// Number of forbidden residues of `class` (popcount of `C`).
    pub fn forbidden_count(&self, class: OpClass) -> Option<u32> {
        self.conflict.get(class.index()).map(|c| bits::count(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_machine::Machine;

    const FP: OpClass = OpClass::new(1);
    const INT: OpClass = OpClass::new(0);

    #[test]
    fn pldi95_fp_conflict_vector() {
        // PLDI'95 FP table: stage 0 at offset 0, stage 1 at offsets
        // {1, 2}, stage 2 at offset 2. Stage 1 gives deltas ±1 and 0.
        let m = Machine::example_pldi95();
        let cm = CollisionMatrix::build(&m, 4);
        assert_eq!(cm.collides(FP, FP, 0), Some(true));
        assert_eq!(cm.collides(FP, FP, 1), Some(true));
        assert_eq!(cm.collides(FP, FP, 3), Some(true)); // -1 mod 4
        assert_eq!(cm.collides(FP, FP, 2), Some(false));
        // Deltas reduce mod T.
        assert_eq!(cm.collides(FP, FP, 6), Some(false));
        assert_eq!(cm.collides(FP, FP, 5), Some(true));
    }

    #[test]
    fn cross_class_never_collides() {
        let m = Machine::example_pldi95();
        let cm = CollisionMatrix::build(&m, 4);
        assert_eq!(cm.collides(INT, FP, 0), Some(false));
        assert_eq!(cm.collides(FP, INT, 3), Some(false));
        assert_eq!(cm.collides(OpClass::new(9), FP, 0), None);
    }

    #[test]
    fn clean_table_conflicts_only_at_zero() {
        let m = Machine::example_clean();
        let cm = CollisionMatrix::build(&m, 8);
        for c in 0..m.num_classes() {
            let class = OpClass::new(c);
            assert_eq!(cm.collides(class, class, 0), Some(true));
            for d in 1..8 {
                assert_eq!(cm.collides(class, class, d), Some(false));
            }
            assert_eq!(cm.self_collides(class), Some(false));
        }
    }

    #[test]
    fn non_pipelined_table_conflicts_everywhere_below_exec_time() {
        let m = Machine::example_non_pipelined();
        let cm = CollisionMatrix::build(&m, 8);
        // Single stage occupied for offsets {0, 1}: deltas {0, ±1}.
        let fp = OpClass::new(1);
        assert_eq!(cm.collides(fp, fp, 0), Some(true));
        assert_eq!(cm.collides(fp, fp, 1), Some(true));
        assert_eq!(cm.collides(fp, fp, 7), Some(true));
        assert_eq!(cm.collides(fp, fp, 2), Some(false));
    }

    #[test]
    fn self_collision_detected_at_tight_period() {
        // A non-pipelined 2-cycle table wraps onto itself at T = 1.
        let m = Machine::example_non_pipelined();
        let cm = CollisionMatrix::build(&m, 1);
        assert_eq!(cm.self_collides(OpClass::new(1)), Some(true));
    }

    #[test]
    fn conflict_vector_is_symmetric() {
        let m = Machine::ppc604();
        for t in [2u32, 4, 8, 16, 67] {
            let cm = CollisionMatrix::build(&m, t);
            for c in 0..m.num_classes() {
                let class = OpClass::new(c);
                for d in 0..t {
                    assert_eq!(
                        cm.collides(class, class, d),
                        cm.collides(class, class, (t - d) % t),
                        "C must be symmetric under negation mod T"
                    );
                }
            }
        }
    }
}
