//! Cyclic hazard finite-state automata.
//!
//! One FSA per `(class, T)` tracks the *forbidden-residue mask* of a
//! single physical unit. The start state is the empty mask; issuing an
//! operation at residue `r` transitions
//!
//! ```text
//! state' = state | rot(C, r)
//! ```
//!
//! where `C` is the class's cyclic conflict vector (bit `d` of `C`
//! lands on bit `(d + r) mod T`). An issue at residue `r` is legal in
//! `state` iff bit `r` of the mask is clear. Because OR is commutative
//! and idempotent, a state is determined by the *set* of residues
//! issued so far, independent of order — which is what makes replaying
//! the remaining residues after a removal sound.
//!
//! States are interned (hash-deduplicated) and transitions compiled to
//! a dense `num_states × T` table during an eager BFS from the start
//! state, so a query is two array reads. State counts are bounded in
//! practice (masks are monotone under OR: every reachable state is an
//! OR of rotations of `C`), but a hard cap guards pathological tables;
//! a capped build reports [`HazardFsa::is_complete`]` == false` and
//! consumers fall back to maintaining dense masks directly.

use crate::bits;
use std::collections::HashMap;

/// Interned state index into a [`HazardFsa`] transition table.
pub type StateId = u32;

/// Hard cap on interned states; beyond it construction degrades to
/// `is_complete() == false` rather than building an unbounded table.
pub const MAX_FSA_STATES: usize = 4096;

/// A compiled hazard automaton for one class at one period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HazardFsa {
    period: u32,
    /// The class's cyclic conflict vector (packed, `T` bits).
    conflict: Box<[u64]>,
    /// Whether a single operation self-collides at this period; if so
    /// no issue is ever legal and the automaton is degenerate.
    self_collides: bool,
    /// Interned forbidden-residue masks; index 0 is the start state.
    states: Vec<Box<[u64]>>,
    /// `trans[s][r]` = state after issuing at residue `r` in state `s`.
    /// Empty when `!complete`.
    trans: Vec<Box<[StateId]>>,
    complete: bool,
}

impl HazardFsa {
    /// The start state (no operations issued on the unit).
    pub const START: StateId = 0;

    /// Compiles the automaton for a conflict vector at `period`.
    pub(crate) fn build(conflict: &[u64], self_collides: bool, period: u32) -> Self {
        let words = bits::words_for(period);
        debug_assert_eq!(conflict.len(), words);
        let start: Box<[u64]> = vec![0u64; words].into_boxed_slice();
        if self_collides {
            // Degenerate: every issue illegal; keep just the start state
            // with a self-loop-free empty table (queries short-circuit).
            return HazardFsa {
                period,
                conflict: conflict.into(),
                self_collides,
                states: vec![start],
                trans: vec![vec![Self::START; period as usize].into_boxed_slice()],
                complete: true,
            };
        }
        let mut states = vec![start.clone()];
        let mut index: HashMap<Box<[u64]>, StateId> = HashMap::new();
        index.insert(start, Self::START);
        let mut trans: Vec<Box<[StateId]>> = Vec::new();
        let mut complete = true;
        let mut done = 0usize;
        while done < states.len() {
            if states.len() > MAX_FSA_STATES {
                complete = false;
                break;
            }
            let mask = states[done].clone();
            let mut row = Vec::with_capacity(period as usize);
            for r in 0..period {
                let mut next = mask.clone();
                bits::or_rotated(&mut next, conflict, r, period);
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = states.len() as StateId;
                        index.insert(next.clone(), id);
                        states.push(next);
                        id
                    }
                };
                row.push(id);
            }
            trans.push(row.into_boxed_slice());
            done += 1;
        }
        if !complete {
            // Collapse to the fallback-only shape: consumers must check
            // `is_complete()` before using the table.
            states.truncate(1);
            trans.clear();
        }
        HazardFsa {
            period,
            conflict: conflict.into(),
            self_collides,
            states,
            trans,
            complete,
        }
    }

    /// The period this automaton was compiled for.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Number of interned states (1 when degenerate or capped).
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Whether the full transition table was built. When `false`
    /// (state cap hit), only [`HazardFsa::conflict_vector`] queries are
    /// meaningful and consumers maintain dense masks themselves.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Whether a single operation of this class self-collides at this
    /// period (no issue is ever legal).
    pub fn self_collides(&self) -> bool {
        self.self_collides
    }

    /// Whether issuing at residue `r` is legal in `state`.
    #[inline]
    pub fn can_issue(&self, state: StateId, r: u32) -> bool {
        !self.self_collides && !bits::test(&self.states[state as usize], r % self.period)
    }

    /// The state after issuing at residue `r` in `state`.
    ///
    /// Meaningful only when [`HazardFsa::is_complete`]; the issue need
    /// not have been legal (the mask algebra is total).
    #[inline]
    pub fn issue(&self, state: StateId, r: u32) -> StateId {
        self.trans[state as usize][(r % self.period) as usize]
    }

    /// The forbidden-residue mask of `state` (packed, `T` bits).
    pub fn forbidden_mask(&self, state: StateId) -> &[u64] {
        &self.states[state as usize]
    }

    /// The class's conflict vector (packed, `T` bits).
    pub fn conflict_vector(&self) -> &[u64] {
        &self.conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector(bits_set: &[u32], period: u32) -> Vec<u64> {
        let mut v = vec![0u64; bits::words_for(period)];
        for &b in bits_set {
            bits::set(&mut v, b);
        }
        v
    }

    #[test]
    fn clean_vector_packs_every_residue() {
        // C = {0}: issues forbid only their own residue.
        let c = vector(&[0], 4);
        let fsa = HazardFsa::build(&c, false, 4);
        assert!(fsa.is_complete());
        let mut s = HazardFsa::START;
        for r in 0..4 {
            assert!(fsa.can_issue(s, r));
            s = fsa.issue(s, r);
        }
        for r in 0..4 {
            assert!(!fsa.can_issue(s, r));
        }
        // States: one per subset-closure level, but interning keeps the
        // count at distinct masks only.
        assert!(fsa.num_states() <= 16);
    }

    #[test]
    fn pldi95_fp_vector_allows_distance_two_only() {
        // C = {0, 1, 3} at T = 4: after issuing at 0, only residue 2
        // remains legal; after {0, 2} the unit is full.
        let c = vector(&[0, 1, 3], 4);
        let fsa = HazardFsa::build(&c, false, 4);
        let s1 = fsa.issue(HazardFsa::START, 0);
        assert!(!fsa.can_issue(s1, 0));
        assert!(!fsa.can_issue(s1, 1));
        assert!(fsa.can_issue(s1, 2));
        assert!(!fsa.can_issue(s1, 3));
        let s2 = fsa.issue(s1, 2);
        for r in 0..4 {
            assert!(!fsa.can_issue(s2, r));
        }
    }

    #[test]
    fn states_are_order_independent() {
        let c = vector(&[0, 1, 3], 8);
        let fsa = HazardFsa::build(&c, false, 8);
        let a = fsa.issue(fsa.issue(HazardFsa::START, 2), 5);
        let b = fsa.issue(fsa.issue(HazardFsa::START, 5), 2);
        assert_eq!(a, b, "OR-ed masks are commutative, states must intern");
    }

    #[test]
    fn degenerate_self_colliding_class_rejects_everything() {
        let c = vector(&[0, 1], 2);
        let fsa = HazardFsa::build(&c, true, 2);
        assert!(fsa.is_complete());
        for r in 0..2 {
            assert!(!fsa.can_issue(HazardFsa::START, r));
        }
    }
}
