//! Fixed-width residue bitsets: one bit per residue mod `T`, packed in
//! 64-bit words. All rotation arithmetic is cyclic over `T` (not over
//! the padded word width).

/// Words needed to hold `period` bits.
pub(crate) fn words_for(period: u32) -> usize {
    (period as usize).div_ceil(64)
}

/// Whether bit `r` is set (`r` must be `< period`).
#[inline]
pub(crate) fn test(bits: &[u64], r: u32) -> bool {
    bits[r as usize / 64] & (1u64 << (r as usize % 64)) != 0
}

/// Sets bit `r`.
#[inline]
pub(crate) fn set(bits: &mut [u64], r: u32) {
    bits[r as usize / 64] |= 1u64 << (r as usize % 64);
}

/// ORs `rot(src, by)` into `dst`: bit `d` of `src` lands on bit
/// `(d + by) mod period`.
pub(crate) fn or_rotated(dst: &mut [u64], src: &[u64], by: u32, period: u32) {
    for (w, &word) in src.iter().enumerate() {
        let mut word = word;
        while word != 0 {
            let b = word.trailing_zeros() as usize;
            word &= word - 1;
            let d = (w * 64 + b) as u32;
            set(dst, (d + by) % period);
        }
    }
}

/// Number of set bits.
pub(crate) fn count(bits: &[u64]) -> u32 {
    bits.iter().map(|w| w.count_ones()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_wraps_cyclically() {
        // period 5: bits {1, 4} rotated by 2 -> {3, 1}.
        let mut src = vec![0u64; 1];
        set(&mut src, 1);
        set(&mut src, 4);
        let mut dst = vec![0u64; 1];
        or_rotated(&mut dst, &src, 2, 5);
        assert!(test(&dst, 3));
        assert!(test(&dst, 1));
        assert!(!test(&dst, 0));
        assert_eq!(count(&dst), 2);
    }

    #[test]
    fn multi_word_periods_work() {
        let period = 130;
        let mut src = vec![0u64; words_for(period)];
        set(&mut src, 129);
        let mut dst = vec![0u64; words_for(period)];
        or_rotated(&mut dst, &src, 3, period);
        assert!(test(&dst, 2)); // (129 + 3) mod 130
    }
}
