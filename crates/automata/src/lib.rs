//! Hazard automata: precompiled structural-conflict oracles.
//!
//! Every hot path in this workspace ultimately answers one question:
//! *does an operation issued at residue `r mod T` collide with another
//! issue on the same physical unit?* The reservation-table scan that
//! answers it (`stages × offsets` per query, allocating per stage) is
//! correct but slow, and it is re-run millions of times across a corpus.
//!
//! Classic pipeline theory (Kogge 1981 ch. 5; Bala & Rubin, MICRO '95;
//! Proebsting & Fraser, POPL '94) compiles the table away:
//!
//! * [`CollisionMatrix`] — per class, the **cyclic conflict vector**
//!   `C ∈ {0,1}^T` with bit `d` set iff two issues separated by
//!   `d mod T` on one unit collide on some stage. A pairwise query is a
//!   single bit test. Cross-class entries are trivially `false` because
//!   units are per-class — two operations of different classes never
//!   share a physical unit.
//! * [`HazardFsa`] — the cyclic hazard **finite-state automaton** whose
//!   states are OR-ed rotations of `C` (the forbidden-residue mask of
//!   one unit), interned and deduplicated so the transition function is
//!   a table lookup.
//! * [`HazardAutomaton`] — both of the above for one `(machine, T)`,
//!   plus the per-unit packing capacity derived from the conflict
//!   closure (used to tighten `ResMII` before any solver runs).
//!   Construction is memoized per `(machine_fingerprint, T)` in a
//!   process-wide registry ([`HazardAutomaton::for_machine`]), so a
//!   corpus run builds each automaton once and every loop shares it.
//!
//! The oracle is wired into three consumers: the IMS modulo reservation
//! table in `swp-heuristics` (slot probing becomes a bit test), the
//! branch-and-bound pruner in `swp-milp` (a partial assignment dies the
//! moment the automaton rejects a fixed class/offset pair), and the
//! cycle-accurate checker in `swp-machine` (fast path with an exact-scan
//! fallback, debug-asserted equivalent). [`stats`] counts automaton hits
//! versus fallback scans for harness telemetry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
mod bits;
mod fsa;
mod matrix;
pub mod stats;

pub use automaton::{res_mii, HazardAutomaton};
pub use fsa::{HazardFsa, StateId, MAX_FSA_STATES};
pub use matrix::CollisionMatrix;
pub use stats::OracleCounters;
