//! Process-wide oracle telemetry: automaton hits versus fallback scans.
//!
//! Counters are plain relaxed atomics — they are *observability only*
//! and never feed back into scheduling decisions, so cross-thread (and
//! cross-test) interleavings are harmless. The harness snapshots before
//! and after a run and reports the delta.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

static FSA_QUERIES: AtomicU64 = AtomicU64::new(0);
static MATRIX_QUERIES: AtomicU64 = AtomicU64::new(0);
static FALLBACK_SCANS: AtomicU64 = AtomicU64::new(0);
static MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static MEMO_BUILDS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the oracle counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleCounters {
    /// Slot probes answered by an FSA state bit test.
    pub fsa_queries: u64,
    /// Pairwise probes answered by a collision-matrix bit test.
    pub matrix_queries: u64,
    /// Queries that fell back to an exact reservation-table scan
    /// (oracle disagreement path or detected-conflict re-derivation).
    pub fallback_scans: u64,
    /// Automata served from the `(machine_fingerprint, T)` registry.
    pub memo_hits: u64,
    /// Automata constructed from scratch.
    pub memo_builds: u64,
}

impl OracleCounters {
    /// The counter delta since an `earlier` snapshot (saturating, so a
    /// stale snapshot never underflows).
    pub fn since(&self, earlier: &OracleCounters) -> OracleCounters {
        OracleCounters {
            fsa_queries: self.fsa_queries.saturating_sub(earlier.fsa_queries),
            matrix_queries: self.matrix_queries.saturating_sub(earlier.matrix_queries),
            fallback_scans: self.fallback_scans.saturating_sub(earlier.fallback_scans),
            memo_hits: self.memo_hits.saturating_sub(earlier.memo_hits),
            memo_builds: self.memo_builds.saturating_sub(earlier.memo_builds),
        }
    }

    /// Whether any counter is nonzero.
    pub fn any(&self) -> bool {
        self.fsa_queries != 0
            || self.matrix_queries != 0
            || self.fallback_scans != 0
            || self.memo_hits != 0
            || self.memo_builds != 0
    }
}

/// Reads the current counter values.
pub fn snapshot() -> OracleCounters {
    OracleCounters {
        fsa_queries: FSA_QUERIES.load(Ordering::Relaxed),
        matrix_queries: MATRIX_QUERIES.load(Ordering::Relaxed),
        fallback_scans: FALLBACK_SCANS.load(Ordering::Relaxed),
        memo_hits: MEMO_HITS.load(Ordering::Relaxed),
        memo_builds: MEMO_BUILDS.load(Ordering::Relaxed),
    }
}

/// Records `n` FSA bit-test queries.
#[inline]
pub fn count_fsa_queries(n: u64) {
    FSA_QUERIES.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` collision-matrix bit-test queries.
#[inline]
pub fn count_matrix_queries(n: u64) {
    MATRIX_QUERIES.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` exact reservation-table fallback scans.
#[inline]
pub fn count_fallback_scans(n: u64) {
    FALLBACK_SCANS.fetch_add(n, Ordering::Relaxed);
}

pub(crate) fn count_memo_hit() {
    MEMO_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_memo_build() {
    MEMO_BUILDS.fetch_add(1, Ordering::Relaxed);
}

/// Serializes tests that reset the process-global telemetry; see
/// [`reset_for_test`].
static RESET_LOCK: Mutex<()> = Mutex::new(());

/// Holds the telemetry-reset lock for the duration of one test's
/// counter assertions. Returned by [`reset_for_test`]; dropping it
/// releases the lock for the next telemetry-observing test.
#[must_use = "drop the guard only after the test's counter assertions"]
#[derive(Debug)]
pub struct TelemetryResetGuard {
    _lock: MutexGuard<'static, ()>,
}

/// Test-only: zeroes every oracle counter *and* clears the automaton
/// memo registry, under a process-wide lock that the returned guard
/// holds until dropped.
///
/// Counters and the registry are process-global, so test suites running
/// many `#[test]`s in one process double-count each other's queries and
/// see registry entries interned by earlier tests (a first-use
/// `for_machine` may report a memo *hit*). Tests that assert on
/// telemetry must call this once at the top and keep the guard alive —
/// it replaces the ad-hoc snapshot/delta and registry-clear dances —
/// which both resets the world and serializes such tests against each
/// other. Tests that never assert on telemetry need no guard: their
/// stray counts are wiped by the next holder's reset.
pub fn reset_for_test() -> TelemetryResetGuard {
    let lock = match RESET_LOCK.lock() {
        Ok(g) => g,
        // A previous holder panicked mid-test; the counters are mere
        // atomics and about to be zeroed anyway.
        Err(poisoned) => poisoned.into_inner(),
    };
    FSA_QUERIES.store(0, Ordering::Relaxed);
    MATRIX_QUERIES.store(0, Ordering::Relaxed);
    FALLBACK_SCANS.store(0, Ordering::Relaxed);
    MEMO_HITS.store(0, Ordering::Relaxed);
    MEMO_BUILDS.store(0, Ordering::Relaxed);
    crate::automaton::clear_registry_for_test();
    TelemetryResetGuard { _lock: lock }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_is_saturating_and_monotone() {
        let before = snapshot();
        count_fsa_queries(3);
        count_fallback_scans(1);
        let delta = snapshot().since(&before);
        // Other tests may run concurrently; deltas are at least ours.
        assert!(delta.fsa_queries >= 3);
        assert!(delta.fallback_scans >= 1);
        assert!(delta.any());
        assert_eq!(before.since(&snapshot()), OracleCounters::default());
    }

    #[test]
    fn reset_guard_zeroes_counters_and_serializes_holders() {
        let guard = reset_for_test();
        // Immediately after a reset, only counts made while holding the
        // guard are visible (concurrent guardless tests may still add;
        // the assertions stay one-sided for that reason).
        count_matrix_queries(2);
        let s = snapshot();
        assert!(s.matrix_queries >= 2);
        drop(guard);
        // Re-acquiring after a drop must not deadlock; the second reset
        // wipes what the first holder counted. (No exact zero assertion:
        // guardless tests running concurrently may count in between.)
        let _guard = reset_for_test();
    }
}
