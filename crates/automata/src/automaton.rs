//! The per-`(machine, T)` hazard automaton and its memo registry.

use crate::bits;
use crate::fsa::HazardFsa;
use crate::matrix::CollisionMatrix;
use crate::stats;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use swp_ddg::{Ddg, OpClass};
use swp_loops::fingerprint::machine_fingerprint;
use swp_machine::{ConflictOracle, Machine, MachineError};

/// A complete structural-conflict oracle for one machine at one period:
/// the pairwise [`CollisionMatrix`], one [`HazardFsa`] per class, and
/// the per-unit packing capacity derived from the conflict closure.
#[derive(Debug)]
pub struct HazardAutomaton {
    machine_fp: u64,
    period: u32,
    matrix: CollisionMatrix,
    fsas: Vec<HazardFsa>,
    /// `capacity[class]`: max operations of `class` one physical unit
    /// can carry per period without a stage collision. Equals
    /// `ReservationTable::max_ops_per_period` (max independent set in
    /// the circulant graph of the conflict vector).
    capacity: Vec<u32>,
    /// `closure[class]`: the forbidden-latency closure anchored at
    /// residue 0 — the OR of the conflict vector rotated to residue 0,
    /// i.e. exactly the root `forbidden` mask the packing search
    /// ([`max_ops_per_unit`]) starts from. Hoisted into the registry
    /// entry so `res_mii` and the CP structural propagator
    /// ([`Self::forbidden_closure`] / [`Self::or_forbidden_from`]) share
    /// one computation per `(machine, T)` instead of re-deriving it per
    /// node.
    closure: Vec<Box<[u64]>>,
}

type Registry = Mutex<HashMap<(u64, u32), Arc<HazardAutomaton>>>;

static REGISTRY: OnceLock<Registry> = OnceLock::new();

impl HazardAutomaton {
    /// Compiles the automaton for `machine` at `period` (no memo).
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn build(machine: &Machine, period: u32) -> Self {
        stats::count_memo_build();
        let matrix = CollisionMatrix::build(machine, period);
        let mut fsas = Vec::with_capacity(matrix.num_classes());
        let mut capacity = Vec::with_capacity(matrix.num_classes());
        let mut closure = Vec::with_capacity(matrix.num_classes());
        for c in 0..matrix.num_classes() {
            let class = OpClass::new(c);
            let self_collides = matrix.self_collides(class).unwrap_or(true);
            let conflict = matrix.conflict_vector(c);
            fsas.push(HazardFsa::build(conflict, self_collides, period));
            // The forbidden-latency closure at residue 0 seeds both the
            // packing search below and the CP propagator's word-parallel
            // domain pruning; computing it once here is the whole point
            // of storing it on the registry entry.
            let mut root = vec![0u64; conflict.len()].into_boxed_slice();
            bits::or_rotated(&mut root, conflict, 0, period);
            capacity.push(max_ops_per_unit(conflict, &root, self_collides, period));
            closure.push(root);
        }
        HazardAutomaton {
            machine_fp: machine_fingerprint(machine),
            period,
            matrix,
            fsas,
            capacity,
            closure,
        }
    }

    /// Fetches the automaton for `(machine, period)` from the
    /// process-wide registry, building and interning it on first use.
    /// The key is `(machine_fingerprint, period)`, so every loop of a
    /// corpus run compiled against the same machine shares one
    /// automaton per candidate period.
    pub fn for_machine(machine: &Machine, period: u32) -> Arc<HazardAutomaton> {
        let fp = machine_fingerprint(machine);
        let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
        let mut guard = match registry.lock() {
            Ok(g) => g,
            // A panic while holding the lock can only have happened in
            // `HazardAutomaton::build`; the map itself is still sound.
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(existing) = guard.get(&(fp, period)) {
            stats::count_memo_hit();
            return Arc::clone(existing);
        }
        let built = Arc::new(HazardAutomaton::build(machine, period));
        guard.insert((fp, period), Arc::clone(&built));
        built
    }

    /// The period this automaton was compiled for.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// The fingerprint of the machine it was compiled from.
    pub fn machine_fingerprint(&self) -> u64 {
        self.machine_fp
    }

    /// The pairwise collision matrix.
    pub fn matrix(&self) -> &CollisionMatrix {
        &self.matrix
    }

    /// The hazard FSA of `class`, or `None` for an unknown class.
    pub fn fsa(&self, class: OpClass) -> Option<&HazardFsa> {
        self.fsas.get(class.index())
    }

    /// Max operations of `class` one unit carries per period, or `None`
    /// for an unknown class.
    pub fn max_ops_per_unit(&self, class: OpClass) -> Option<u32> {
        self.capacity.get(class.index()).copied()
    }

    /// The forbidden-latency closure of `class` anchored at residue 0:
    /// one bit per residue `d`, set iff an issue `d mod T` after an
    /// anchor issue on the same unit collides. Identical to the conflict
    /// vector closed under rotation to 0, precomputed at build time so
    /// consumers (the `ResMII` refinement, the CP structural propagator)
    /// never re-derive it per node. `None` for an unknown class.
    pub fn forbidden_closure(&self, class: OpClass) -> Option<&[u64]> {
        self.closure.get(class.index()).map(|c| &**c)
    }

    /// ORs the forbidden-latency closure of `class`, rotated so its
    /// anchor sits at residue `anchor`, into `dst` (one bit per residue,
    /// `words_for(T)` words). This is the CP propagator's bulk domain
    /// prune: after it, every set bit of `dst` is a residue where a new
    /// op of `class` would collide with an op already issued at `anchor`
    /// on the same unit. No-op for an unknown class.
    pub fn or_forbidden_from(&self, class: OpClass, anchor: u32, dst: &mut [u64]) {
        if let Some(closure) = self.closure.get(class.index()) {
            bits::or_rotated(dst, closure, anchor % self.period, self.period);
        }
    }

    /// Words needed for a residue mask at this automaton's period (the
    /// layout [`or_forbidden_from`](Self::or_forbidden_from) expects).
    pub fn mask_words(&self) -> usize {
        bits::words_for(self.period)
    }
}

impl ConflictOracle for HazardAutomaton {
    fn period(&self) -> u32 {
        self.period
    }

    fn same_unit_collides(&self, a: OpClass, b: OpClass, delta: u32) -> Option<bool> {
        stats::count_matrix_queries(1);
        self.matrix.collides(a, b, delta)
    }

    fn self_collides(&self, class: OpClass) -> Option<bool> {
        self.matrix.self_collides(class)
    }
}

/// Test-only: empties the memo registry so the next
/// [`HazardAutomaton::for_machine`] call builds from scratch.
/// Outstanding `Arc`s stay valid. Called by
/// [`stats::reset_for_test`](crate::stats::reset_for_test), which also
/// holds the serialization lock — use that entry point.
pub(crate) fn clear_registry_for_test() {
    if let Some(registry) = REGISTRY.get() {
        let mut guard = match registry.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.clear();
    }
}

/// Max independent set in the circulant graph `{r1 ~ r2 ⇔ C[(r1−r2) mod
/// T] = 1}`: the exact number of operations one unit carries per
/// period. Pairwise stage-disjointness is equivalent to joint
/// disjointness (a cell is multiply claimed iff some *pair* claims it),
/// so this matches `ReservationTable::max_ops_per_period` exactly —
/// including its rotation-symmetry normalization (residue 0 is in some
/// maximum packing, so it is fixed).
fn max_ops_per_unit(conflict: &[u64], closure: &[u64], self_collides: bool, period: u32) -> u32 {
    if self_collides {
        return 0;
    }
    // `closure` is the hoisted root mask (conflict vector rotated to
    // residue 0) shared with `HazardAutomaton::forbidden_closure`.
    let mut best = 1u32;
    pack_dfs(conflict, period, closure, 1, 1, &mut best);
    best
}

fn pack_dfs(
    conflict: &[u64],
    period: u32,
    forbidden: &[u64],
    next: u32,
    count: u32,
    best: &mut u32,
) {
    for r in next..period {
        // Even taking every remaining residue cannot beat the best.
        if count + (period - r) <= *best {
            return;
        }
        if bits::test(forbidden, r) {
            continue;
        }
        let mut extended = forbidden.to_vec();
        bits::or_rotated(&mut extended, conflict, r, period);
        let new_count = count + 1;
        if new_count > *best {
            *best = new_count;
        }
        pack_dfs(conflict, period, &extended, r + 1, new_count, best);
    }
}

/// The automaton-tightened resource bound `ResMII`: the counting bound
/// advanced past every period where some class's operations provably
/// cannot pack onto its units, with per-unit capacity read from the
/// memoized automaton instead of a fresh reservation-table search.
/// Structurally identical to [`Machine::t_res`] (same refinement loop,
/// same `+64` cap), so the two always agree — debug-asserted by
/// callers and pinned by the equivalence proptest.
///
/// # Errors
///
/// [`MachineError::UnknownClass`] if the DDG uses an undefined class.
pub fn res_mii(machine: &Machine, ddg: &Ddg) -> Result<u32, MachineError> {
    let mut bound = machine.t_res_counting(ddg)?;
    let cap = bound + 64;
    'refine: while bound < cap {
        let automaton = HazardAutomaton::for_machine(machine, bound);
        for class in ddg.classes() {
            let fu = machine.fu_type(class)?;
            let n_ops = ddg.nodes_of_class(class).len() as u32;
            if n_ops == 0 {
                continue;
            }
            let per_unit = automaton.max_ops_per_unit(class).unwrap_or(0);
            if n_ops > fu.count * per_unit {
                bound += 1;
                continue 'refine;
            }
        }
        break;
    }
    Ok(bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_matches_reservation_table_search() {
        for machine in [
            Machine::example_pldi95(),
            Machine::example_clean(),
            Machine::example_non_pipelined(),
            Machine::ppc604(),
        ] {
            for period in 1u32..=12 {
                let automaton = HazardAutomaton::build(&machine, period);
                for (c, t) in machine.types().iter().enumerate() {
                    assert_eq!(
                        automaton.max_ops_per_unit(OpClass::new(c)),
                        Some(t.reservation.max_ops_per_period(period)),
                        "class {c} at T={period}"
                    );
                }
            }
        }
    }

    #[test]
    fn registry_returns_shared_instances() {
        // The reset guard clears the process-global registry and zeroes
        // the counters, so the build/hit sequence below is exact even
        // when other suites in this process already interned (machine,
        // 7) — no ad-hoc snapshot/delta arithmetic needed.
        let _guard = stats::reset_for_test();
        let machine = Machine::example_pldi95();
        let a = HazardAutomaton::for_machine(&machine, 7);
        let b = HazardAutomaton::for_machine(&machine, 7);
        assert!(Arc::ptr_eq(&a, &b));
        let after = stats::snapshot();
        assert!(after.memo_hits >= 1, "second fetch must be a memo hit");
        assert!(after.memo_builds >= 1, "first fetch must build");
    }

    #[test]
    fn hoisted_closure_matches_matrix_and_rotates_correctly() {
        for machine in [
            Machine::example_pldi95(),
            Machine::example_clean(),
            Machine::example_non_pipelined(),
            Machine::ppc604(),
        ] {
            for period in [2u32, 4, 7, 13] {
                let a = HazardAutomaton::build(&machine, period);
                for c in 0..machine.num_classes() {
                    let class = OpClass::new(c);
                    let closure = a.forbidden_closure(class).expect("known class");
                    // Bit d of the hoisted closure must equal the
                    // pairwise matrix verdict at delta d.
                    for d in 0..period {
                        assert_eq!(
                            crate::bits::test(closure, d),
                            a.matrix().collides(class, class, d) == Some(true),
                            "class {c} T={period} delta {d}"
                        );
                    }
                    // The rotated form anchors the closure at `anchor`:
                    // bit r set iff (r - anchor) mod T collides.
                    for anchor in 0..period {
                        let mut mask = vec![0u64; a.mask_words()];
                        a.or_forbidden_from(class, anchor, &mut mask);
                        for r in 0..period {
                            let delta = (r + period - anchor) % period;
                            assert_eq!(
                                crate::bits::test(&mask, r),
                                a.matrix().collides(class, class, delta) == Some(true),
                                "class {c} T={period} anchor {anchor} residue {r}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn oracle_trait_answers_match_matrix() {
        let machine = Machine::example_pldi95();
        let automaton = HazardAutomaton::build(&machine, 4);
        let fp = OpClass::new(1);
        let oracle: &dyn ConflictOracle = &automaton;
        assert_eq!(oracle.period(), 4);
        assert_eq!(oracle.same_unit_collides(fp, fp, 1), Some(true));
        assert_eq!(oracle.same_unit_collides(fp, fp, 2), Some(false));
        assert_eq!(oracle.self_collides(fp), Some(false));
    }

    #[test]
    fn registry_never_aliases_distinct_bundle_widths() {
        // Regression: the registry memoizes per (machine fingerprint, T).
        // Two machines that differ only in their VLIW issue width must
        // hash differently, or the second would be served the first's
        // automaton (and, worse, the harness result cache built on the
        // same fingerprint would serve the wrong cached verdicts).
        use swp_machine::BundleSpec;
        let w2 = Machine::example_clean()
            .with_bundle(BundleSpec::width(2))
            .unwrap();
        let w3 = Machine::example_clean()
            .with_bundle(BundleSpec::width(3))
            .unwrap();
        let a2 = HazardAutomaton::for_machine(&w2, 4);
        let a3 = HazardAutomaton::for_machine(&w3, 4);
        assert_ne!(
            a2.machine_fingerprint(),
            a3.machine_fingerprint(),
            "widths 2 and 3 alias at T=4"
        );
        assert!(!Arc::ptr_eq(&a2, &a3), "registry interned one automaton");
        // Same width at the same T still shares one entry.
        let again = HazardAutomaton::for_machine(&w2, 4);
        assert!(Arc::ptr_eq(&a2, &again));
    }
}
