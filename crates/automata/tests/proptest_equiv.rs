//! The subsystem's headline property: automaton verdicts are
//! bit-identical to the naive reservation-table scan — and consistent
//! with the cycle-accurate simulator — on random machines, random
//! periods, and random placements.

use proptest::prelude::*;
use swp_automata::{res_mii, CollisionMatrix, HazardAutomaton, HazardFsa};
use swp_ddg::{Ddg, OpClass};
use swp_machine::{
    check_fixed_assignment, check_fixed_assignment_with, simulate, FuType, Machine,
    PipelinedSchedule, PlacedOp, ReservationTable, SimError, UnitPolicy,
};

/// Arbitrary well-formed reservation table (1–4 stages, 1–6 columns,
/// with some mark at issue time).
fn arb_table() -> impl Strategy<Value = ReservationTable> {
    (1usize..=4, 1usize..=6).prop_flat_map(|(stages, cols)| {
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), cols), stages).prop_map(
            move |mut rows| {
                rows[0][0] = true;
                let refs: Vec<&[bool]> = rows.iter().map(|r| r.as_slice()).collect();
                ReservationTable::from_rows(&refs).expect("shape is valid")
            },
        )
    })
}

/// Arbitrary machine: 1–3 classes, 1–2 units each, random tables.
fn arb_machine() -> impl Strategy<Value = Machine> {
    proptest::collection::vec((arb_table(), 1u32..=2), 1..=3).prop_map(|types| {
        Machine::new(
            types
                .into_iter()
                .enumerate()
                .map(|(i, (reservation, count))| FuType {
                    name: format!("C{i}"),
                    count,
                    latency: 1,
                    reservation,
                })
                .collect(),
        )
        .expect("valid machine")
    })
}

/// The exact pairwise verdict the checker scans for: same-stage marks of
/// one table overlapping at issue distance `delta` (mod `period`).
fn naive_collides(rt: &ReservationTable, period: u32, delta: u32) -> bool {
    (0..rt.stages()).any(|s| {
        let offs = rt.stage_offsets(s);
        offs.iter().any(|&l1| {
            offs.iter()
                .any(|&l2| (l1 as i64 - l2 as i64).rem_euclid(i64::from(period)) as u32 == delta)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Collision-matrix bits are exactly the naive pair-scan verdicts,
    /// for every class and every issue distance.
    #[test]
    fn matrix_matches_naive_scan(machine in arb_machine(), t in 1u32..=10) {
        let matrix = CollisionMatrix::build(&machine, t);
        for (i, fu) in machine.types().iter().enumerate() {
            let class = OpClass::new(i);
            for delta in 0..t {
                prop_assert_eq!(
                    matrix.collides(class, class, delta),
                    Some(naive_collides(&fu.reservation, t, delta)),
                    "class {} delta {} at T={}", i, delta, t
                );
            }
            prop_assert_eq!(
                matrix.self_collides(class),
                Some(!fu.reservation.modulo_feasible(t))
            );
        }
    }

    /// FSA verdicts agree with pairwise matrix probes along any residue
    /// sequence: `can_issue` after placing a set of residues is exactly
    /// "no placed residue is at a forbidden distance".
    #[test]
    fn fsa_matches_matrix_along_random_sequences(
        machine in arb_machine(),
        t in 1u32..=10,
        residues in proptest::collection::vec(0u32..10, 0..6),
        probe in 0u32..10,
    ) {
        let automaton = HazardAutomaton::for_machine(&machine, t);
        for (i, _) in machine.types().iter().enumerate() {
            let class = OpClass::new(i);
            let fsa = automaton.fsa(class).expect("per-class FSA");
            prop_assert!(fsa.is_complete(), "small tables must build fully");
            let mut state = HazardFsa::START;
            let mut placed: Vec<u32> = Vec::new();
            for &r in &residues {
                let r = r % t;
                if fsa.can_issue(state, r) {
                    state = fsa.issue(state, r);
                    placed.push(r);
                }
            }
            let r = probe % t;
            let pairwise_free = automaton.matrix().self_collides(class) == Some(false)
                && placed.iter().all(|&q| {
                    automaton.matrix().collides(class, class, (r + t - q) % t) == Some(false)
                });
            prop_assert_eq!(
                fsa.can_issue(state, r),
                pairwise_free,
                "class {} residues {:?} probe {} at T={}", i, placed, r, t
            );
        }
    }

    /// The checker's oracle fast path returns byte-identical results to
    /// the exact scan — same acceptance, same first error — on random
    /// placements (valid and colliding alike).
    #[test]
    fn oracle_checker_matches_exact_checker(
        machine in arb_machine(),
        t in 1u32..=8,
        raw in proptest::collection::vec((0usize..3, 0u32..16, 0u32..2), 1..6),
    ) {
        let num_classes = machine.types().len();
        let ops: Vec<PlacedOp> = raw
            .iter()
            .map(|&(c, offset, fu)| {
                let class = OpClass::new(c % num_classes);
                let count = machine.types()[c % num_classes].count;
                PlacedOp { class, offset: offset % t, fu: Some(fu % count) }
            })
            .collect();
        let automaton = HazardAutomaton::for_machine(&machine, t);
        let exact = check_fixed_assignment(&machine, t, &ops);
        let oracle = check_fixed_assignment_with(&machine, t, &ops, Some(&*automaton));
        prop_assert_eq!(oracle, exact);
    }

    /// Checker-accepted schedules survive the cycle-accurate simulator,
    /// and simulator-detected collisions are always checker-rejected —
    /// the automaton cannot certify a schedule the hardware would break.
    #[test]
    fn oracle_accepts_iff_simulator_survives(
        machine in arb_machine(),
        t in 1u32..=8,
        raw in proptest::collection::vec((0usize..3, 0u32..16, 0u32..2), 1..5),
    ) {
        let num_classes = machine.types().len();
        let mut ddg = Ddg::new();
        let mut starts = Vec::new();
        let mut assignment = Vec::new();
        let mut ops = Vec::new();
        for (i, &(c, offset, fu)) in raw.iter().enumerate() {
            let class = OpClass::new(c % num_classes);
            let count = machine.types()[c % num_classes].count;
            ddg.add_node(format!("n{i}"), class, 1);
            starts.push(offset % t);
            assignment.push(Some(fu % count));
            ops.push(PlacedOp { class, offset: offset % t, fu: Some(fu % count) });
        }
        let automaton = HazardAutomaton::for_machine(&machine, t);
        let verdict = check_fixed_assignment_with(&machine, t, &ops, Some(&*automaton));
        let schedule = PipelinedSchedule::new(t, starts, assignment);
        // Enough iterations that every modulo-periodic overlap manifests.
        let sim = simulate(&machine, &ddg, &schedule, 8, UnitPolicy::Fixed);
        if verdict.is_ok() {
            prop_assert!(sim.is_ok(), "oracle accepted but simulator found {:?}", sim.err());
        }
        if matches!(sim, Err(SimError::Collision { .. })) {
            prop_assert!(verdict.is_err(), "simulator collided but oracle accepted");
        }
    }

    /// The automaton's `res_mii` (forbidden-latency closure) equals the
    /// machine's exact packing-refined `T_res` on random edge-free DDGs.
    #[test]
    fn res_mii_matches_exact_packing_bound(
        machine in arb_machine(),
        raw in proptest::collection::vec(0usize..3, 1..8),
    ) {
        let num_classes = machine.types().len();
        let mut ddg = Ddg::new();
        for (i, &c) in raw.iter().enumerate() {
            ddg.add_node(format!("n{i}"), OpClass::new(c % num_classes), 1);
        }
        prop_assert_eq!(res_mii(&machine, &ddg), machine.t_res(&ddg));
    }
}
