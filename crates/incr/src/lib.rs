//! Incremental solving sessions.
//!
//! A [`SolveSession`] owns a DDG, a target machine, and a scheduler
//! configuration, and survives across queries: repeated solves and
//! small graph edits (add/remove an instruction or a dependence) reuse
//! work from earlier solves instead of starting cold. Reuse happens in
//! two tiers with very different trust levels:
//!
//! * **Exact replay.** Results are cached under a structural
//!   fingerprint of the instance. Re-solving a fingerprint-identical
//!   instance (e.g. after an edit script that reverts itself) replays
//!   the cached [`ScheduleResult`] bit for bit — same schedule, same
//!   attempt log, same optimality claim. Always sound: same instance,
//!   same deterministic solver.
//! * **Monotone facts.** Across *different* fingerprints the session
//!   carries facts that stay true under the edit's direction.
//!   Tightening edits ([`EditOp::AddEdge`], [`EditOp::AddNode`]) only
//!   shrink the solution set, so proven period refutations survive and
//!   the next sweep starts above them ([`WarmState::start_at`]), and CP
//!   no-good clauses remain valid refutations. Relaxing edits
//!   ([`EditOp::RemoveEdge`], [`EditOp::RemoveNode`]) only grow the
//!   solution set, so refutations and no-goods are flushed, while the
//!   last feasible schedule survives as a *hint* (projected onto the
//!   remaining instructions on node removal) — it is re-validated by
//!   the cycle-accurate checker before it is ever trusted.
//!
//! Everything else the session carries — the simplex basis keyed by
//! variable name, the IMS schedule hint — is advisory by construction:
//! the solver re-validates hints and can at worst waste the work of
//! checking them. The differential obligation (`swp-fuzz`'s
//! incremental-vs-cold mode) is that for any edit script the session
//! and a cold solver agree on achieved period, optimality claim, and
//! schedule validity at every step.
//!
//! Node identity is positional, like [`Ddg`]: `add_node` returns the
//! next index, and [`EditOp::RemoveNode`] shifts every higher index
//! down by one (the `Vec::remove` convention). Callers that need
//! stable handles across removals must track the shifts themselves —
//! the daemon's session protocol simply exposes the same convention.

use std::collections::HashMap;
use std::time::Duration;

use swp_core::{
    Optimality, RateOptimalScheduler, ReuseStats, ScheduleError, ScheduleResult, SchedulerConfig,
    WarmState,
};
use swp_ddg::{Ddg, OpClass};
use swp_machine::{Machine, PipelinedSchedule};
use swp_milp::Budget;

/// Cached exact-replay results kept per session. The cache is cleared
/// wholesale when full; edit scripts revisit a handful of recent
/// fingerprints (undo/redo lineages), so recency is the only structure
/// worth preserving.
const MAX_CACHED_SOLVES: usize = 64;

/// One instruction as the session records it (the session re-builds the
/// [`Ddg`] from these specs after destructive edits, which `Ddg` itself
/// does not support).
#[derive(Debug, Clone, PartialEq, Eq)]
struct NodeSpec {
    name: String,
    class: OpClass,
    latency: u32,
}

/// A graph edit, the unit of the session's incremental interface.
///
/// `class` is the function-unit class index on the session's machine;
/// node endpoints are positional indices into the current live nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// Append an instruction (tightening: more resource demand, no new
    /// freedom for the existing instructions).
    AddNode {
        /// Human-readable name.
        name: String,
        /// Function-unit class index.
        class: usize,
        /// Latency in cycles.
        latency: u32,
    },
    /// Remove the instruction at `index` and every incident dependence
    /// (relaxing). Higher indices shift down by one.
    RemoveNode {
        /// Positional index of the instruction to remove.
        index: usize,
    },
    /// Add a dependence edge (tightening).
    AddEdge {
        /// Producing instruction index.
        src: usize,
        /// Consuming instruction index.
        dst: usize,
        /// Iteration distance `m_ij`.
        distance: u32,
    },
    /// Remove one matching dependence edge (relaxing).
    RemoveEdge {
        /// Producing instruction index.
        src: usize,
        /// Consuming instruction index.
        dst: usize,
        /// Iteration distance `m_ij`.
        distance: u32,
    },
}

impl EditOp {
    /// Whether the edit can only shrink the solution set (so proven
    /// refutations and learned no-goods survive it).
    pub fn is_tightening(&self) -> bool {
        matches!(self, EditOp::AddNode { .. } | EditOp::AddEdge { .. })
    }
}

/// Errors from applying an edit to a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// An edit referenced a node index not currently in the graph.
    UnknownNode(usize),
    /// `RemoveEdge` named a dependence that does not exist.
    UnknownEdge {
        /// Producing instruction index.
        src: usize,
        /// Consuming instruction index.
        dst: usize,
        /// Iteration distance.
        distance: u32,
    },
    /// The edit referenced a function-unit class the machine lacks.
    UnknownClass(usize),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownNode(i) => write!(f, "unknown node index {i}"),
            SessionError::UnknownEdge { src, dst, distance } => {
                write!(f, "no edge {src} -> {dst} (distance {distance})")
            }
            SessionError::UnknownClass(c) => write!(f, "unknown class index {c}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// A long-lived solving session: DDG + machine + configuration, with
/// warm state and an exact-replay cache carried across queries.
pub struct SolveSession {
    scheduler: RateOptimalScheduler,
    nodes: Vec<NodeSpec>,
    edges: Vec<(usize, usize, u32)>,
    /// Rebuilt lazily after edits; `None` means dirty.
    ddg: Option<Ddg>,
    warm: WarmState,
    cache: HashMap<u64, ScheduleResult>,
    edits_applied: u64,
    solves: u64,
}

impl SolveSession {
    /// An empty session for `machine` under `config`.
    pub fn new(machine: Machine, config: SchedulerConfig) -> Self {
        SolveSession {
            scheduler: RateOptimalScheduler::new(machine, config),
            nodes: Vec::new(),
            edges: Vec::new(),
            ddg: Some(Ddg::new()),
            warm: WarmState::new(),
            cache: HashMap::new(),
            edits_applied: 0,
            solves: 0,
        }
    }

    /// A session seeded from an existing graph (e.g. a corpus loop).
    pub fn from_ddg(machine: Machine, config: SchedulerConfig, ddg: &Ddg) -> Self {
        let mut s = SolveSession::new(machine, config);
        s.nodes = ddg
            .nodes()
            .map(|(_, n)| NodeSpec {
                name: n.name.clone(),
                class: n.class,
                latency: n.latency,
            })
            .collect();
        s.edges = ddg
            .edges()
            .map(|e| (e.src.index(), e.dst.index(), e.distance))
            .collect();
        s.ddg = None;
        s
    }

    /// Number of live instructions.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live dependences.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edits applied so far.
    pub fn edits_applied(&self) -> u64 {
        self.edits_applied
    }

    /// Solves answered so far (replays included).
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Cumulative reuse telemetry (snapshot-and-diff per query).
    pub fn reuse(&self) -> ReuseStats {
        self.warm.reuse
    }

    /// The machine this session targets.
    pub fn machine(&self) -> &Machine {
        self.scheduler.machine()
    }

    /// The current graph (rebuilt if an edit dirtied it).
    pub fn ddg(&mut self) -> &Ddg {
        if self.ddg.is_none() {
            let mut g = Ddg::new();
            let ids: Vec<_> = self
                .nodes
                .iter()
                .map(|n| g.add_node(n.name.clone(), n.class, n.latency))
                .collect();
            for &(src, dst, distance) in &self.edges {
                // Specs are validated on entry, so the ids are in range.
                let _ = g.add_edge(ids[src], ids[dst], distance);
            }
            self.ddg = Some(g);
        }
        self.ddg.as_ref().expect("just built")
    }

    /// Applies one edit, adjusting the carried warm facts to whatever
    /// remains true on the other side. Returns the size of the
    /// dependency cone the edit invalidated (also accumulated into
    /// [`ReuseStats::cone_nodes`]).
    pub fn apply(&mut self, op: &EditOp) -> Result<usize, SessionError> {
        let n = self.nodes.len();
        let cone = match op {
            EditOp::AddNode {
                name,
                class,
                latency,
            } => {
                if *class >= self.machine().num_classes() {
                    return Err(SessionError::UnknownClass(*class));
                }
                self.nodes.push(NodeSpec {
                    name: name.clone(),
                    class: OpClass::new(*class),
                    latency: *latency,
                });
                // The carried schedule covers one fewer op than the new
                // instance and can never re-validate; drop it rather
                // than paying a doomed check every period.
                self.warm.ims_hint = None;
                1
            }
            EditOp::AddEdge { src, dst, distance } => {
                for &e in [src, dst].iter() {
                    if *e >= n {
                        return Err(SessionError::UnknownNode(*e));
                    }
                }
                self.edges.push((*src, *dst, *distance));
                self.cone(*src, *dst)
            }
            EditOp::RemoveEdge { src, dst, distance } => {
                let at = self
                    .edges
                    .iter()
                    .position(|&(s, d, m)| s == *src && d == *dst && m == *distance)
                    .ok_or(SessionError::UnknownEdge {
                        src: *src,
                        dst: *dst,
                        distance: *distance,
                    })?;
                self.edges.remove(at);
                // Relaxing: refutations and learned clauses no longer
                // bind; the old schedule stays feasible and survives as
                // a hint.
                self.warm.start_at = None;
                self.warm.nogoods.clear();
                self.cone(*src, *dst)
            }
            EditOp::RemoveNode { index } => {
                if *index >= n {
                    return Err(SessionError::UnknownNode(*index));
                }
                let cone = self.cone(*index, *index);
                self.nodes.remove(*index);
                self.edges.retain(|&(s, d, _)| s != *index && d != *index);
                for (s, d, _) in self.edges.iter_mut() {
                    if *s > *index {
                        *s -= 1;
                    }
                    if *d > *index {
                        *d -= 1;
                    }
                }
                self.warm.start_at = None;
                self.warm.nogoods.clear();
                // Project the carried schedule onto the survivors: the
                // remaining placements use a subset of the resources, so
                // the projection stays feasible — and is re-validated
                // before use regardless.
                if let Some(h) = self.warm.ims_hint.take() {
                    if h.num_ops() == n {
                        let mut starts = h.start_times().to_vec();
                        let mut assign = h.assignment().to_vec();
                        starts.remove(*index);
                        assign.remove(*index);
                        self.warm.ims_hint = Some(PipelinedSchedule::new(
                            h.initiation_interval(),
                            starts,
                            assign,
                        ));
                    }
                }
                cone
            }
        };
        self.ddg = None;
        self.edits_applied += 1;
        self.warm.reuse.cone_nodes += cone as u64;
        Ok(cone)
    }

    /// Solves the current instance, warm. Budget comes from the
    /// configuration's total time limit (none = unlimited), mirroring
    /// [`RateOptimalScheduler::schedule`].
    pub fn solve(&mut self) -> Result<ScheduleResult, ScheduleError> {
        let budget = match self.time_limit_total() {
            Some(d) => Budget::with_deadline(d),
            None => Budget::unlimited(),
        };
        self.solve_with(&budget)
    }

    /// Solves the current instance under an explicit budget, reusing
    /// carried state: fingerprint-identical instances replay the cached
    /// result outright; otherwise the warm sweep runs with whatever
    /// monotone facts and hints survived the intervening edits.
    pub fn solve_with(&mut self, budget: &Budget) -> Result<ScheduleResult, ScheduleError> {
        self.solves += 1;
        let fp = self.fingerprint();
        if let Some(hit) = self.cache.get(&fp) {
            let result = hit.clone();
            self.warm.reuse.replays += 1;
            // Re-anchor the monotone facts on the replayed instance so
            // the *next* edit chains off it, exactly as if we had
            // re-solved.
            self.warm.ims_hint = Some(result.schedule.clone());
            self.warm.start_at = Some(first_unrefuted(&result));
            return Ok(result);
        }
        self.ddg();
        let ddg = self.ddg.take().expect("just built");
        let solved = self
            .scheduler
            .schedule_with_warm(&ddg, budget, &mut self.warm);
        self.ddg = Some(ddg);
        if let Ok(res) = &solved {
            self.warm.start_at = Some(first_unrefuted(res));
            if self.cache.len() >= MAX_CACHED_SOLVES {
                self.cache.clear();
            }
            self.cache.insert(fp, res.clone());
        }
        solved
    }

    /// Structural fingerprint of the current instance (nodes in order,
    /// edges as a multiset-insensitive ordered list). Machine and
    /// configuration are fixed per session, so they are not hashed.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.nodes.len() as u64);
        for n in &self.nodes {
            h.bytes(n.name.as_bytes());
            h.u64(n.class.index() as u64);
            h.u64(u64::from(n.latency));
        }
        // Edge order must not matter: scripts that remove and re-add a
        // dependence land it at the back of the list, yet describe the
        // same instance. Hash a sorted copy.
        let mut edges = self.edges.clone();
        edges.sort_unstable();
        h.u64(edges.len() as u64);
        for (s, d, m) in edges {
            h.u64(s as u64);
            h.u64(d as u64);
            h.u64(u64::from(m));
        }
        h.finish()
    }

    /// The dependency cone of an edit touching `a` (as a consumer side)
    /// and `b` (as a producer side): every transitive predecessor of
    /// `a`, every transitive successor of `b`, and the endpoints
    /// themselves. These are the instructions whose feasible start
    /// windows the edit can move; the count feeds reuse telemetry.
    fn cone(&self, a: usize, b: usize) -> usize {
        let n = self.nodes.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(s, d, _) in &self.edges {
            succs[s].push(d);
            preds[d].push(s);
        }
        let mut in_cone = vec![false; n];
        let mut stack = vec![a];
        while let Some(v) = stack.pop() {
            if !in_cone[v] {
                in_cone[v] = true;
                stack.extend(preds[v].iter().copied().filter(|&p| !in_cone[p]));
            }
        }
        let mut down = vec![false; n];
        stack.push(b);
        while let Some(v) = stack.pop() {
            if !down[v] {
                down[v] = true;
                stack.extend(succs[v].iter().copied().filter(|&s| !down[s]));
            }
        }
        (0..n).filter(|&v| in_cone[v] || down[v]).count()
    }

    fn time_limit_total(&self) -> Option<Duration> {
        self.scheduler.config().time_limit_total
    }
}

/// The first period whose refutation `result` does *not* carry: every
/// period below it is proven infeasible and may be skipped by the next
/// warm sweep of the same (or a tightened) instance.
fn first_unrefuted(result: &ScheduleResult) -> u32 {
    match result.optimality {
        Optimality::Proven => result.schedule.initiation_interval(),
        Optimality::BudgetExhausted { smallest_refuted } => smallest_refuted,
    }
}

/// FNV-1a, the same hash the harness uses for artifact fingerprints —
/// stable across platforms and runs, cheap, and collision-safe enough
/// for a per-session cache keyed by full structural content.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= u64::from(x);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_machine::{FuType, Machine, ReservationTable};

    fn machine() -> Machine {
        Machine::new(vec![
            FuType {
                name: "alu".into(),
                count: 1,
                latency: 1,
                reservation: ReservationTable::clean(1),
            },
            FuType {
                name: "mul".into(),
                count: 1,
                latency: 2,
                reservation: ReservationTable::non_pipelined(2),
            },
        ])
        .expect("valid machine")
    }

    fn seeded() -> SolveSession {
        let mut ddg = Ddg::new();
        let a = ddg.add_node("a", OpClass::new(0), 1);
        let b = ddg.add_node("b", OpClass::new(1), 2);
        let c = ddg.add_node("c", OpClass::new(0), 1);
        ddg.add_edge(a, b, 0).expect("edge");
        ddg.add_edge(b, c, 0).expect("edge");
        ddg.add_edge(c, a, 2).expect("edge");
        SolveSession::from_ddg(machine(), SchedulerConfig::default(), &ddg)
    }

    #[test]
    fn replay_is_bit_for_bit() {
        let mut s = seeded();
        let first = s.solve().expect("feasible");
        let again = s.solve().expect("feasible");
        assert_eq!(first.schedule, again.schedule);
        assert_eq!(first.optimality.is_proven(), again.optimality.is_proven());
        assert_eq!(s.reuse().replays, 1);
    }

    #[test]
    fn revert_script_replays() {
        let mut s = seeded();
        let before = s.solve().expect("feasible");
        let fp = s.fingerprint();
        s.apply(&EditOp::AddEdge {
            src: 0,
            dst: 2,
            distance: 1,
        })
        .expect("apply");
        let _mid = s.solve().expect("still feasible");
        s.apply(&EditOp::RemoveEdge {
            src: 0,
            dst: 2,
            distance: 1,
        })
        .expect("apply");
        assert_eq!(s.fingerprint(), fp, "revert restores the fingerprint");
        let after = s.solve().expect("feasible");
        assert_eq!(before.schedule, after.schedule);
        assert!(s.reuse().replays >= 1);
    }

    #[test]
    fn remove_node_shifts_indices() {
        let mut s = seeded();
        s.apply(&EditOp::RemoveNode { index: 1 }).expect("apply");
        assert_eq!(s.num_nodes(), 2);
        // Only the carried c->a recurrence survives, renumbered 1 -> 0.
        assert_eq!(s.num_edges(), 1);
        let res = s.solve().expect("feasible");
        assert_eq!(res.schedule.num_ops(), 2);
    }

    #[test]
    fn tightening_carries_refutations() {
        let mut s = seeded();
        let first = s.solve().expect("feasible");
        s.apply(&EditOp::AddEdge {
            src: 0,
            dst: 1,
            distance: 1,
        })
        .expect("apply");
        let skipped_before = s.reuse().periods_skipped;
        let second = s.solve().expect("feasible");
        // The tightened instance can only be as hard or harder.
        assert!(second.schedule.initiation_interval() >= first.schedule.initiation_interval());
        // If the first solve refuted anything, the second skipped it.
        if first.optimality.is_proven()
            && first.schedule.initiation_interval() > first.t_dep.max(first.t_res)
        {
            assert!(s.reuse().periods_skipped > skipped_before);
        }
    }

    #[test]
    fn bad_edits_are_rejected() {
        let mut s = seeded();
        assert_eq!(
            s.apply(&EditOp::RemoveNode { index: 9 }),
            Err(SessionError::UnknownNode(9))
        );
        assert_eq!(
            s.apply(&EditOp::AddEdge {
                src: 0,
                dst: 7,
                distance: 0
            }),
            Err(SessionError::UnknownNode(7))
        );
        assert_eq!(
            s.apply(&EditOp::RemoveEdge {
                src: 0,
                dst: 2,
                distance: 3
            }),
            Err(SessionError::UnknownEdge {
                src: 0,
                dst: 2,
                distance: 3
            })
        );
        assert_eq!(
            s.apply(&EditOp::AddNode {
                name: "x".into(),
                class: 5,
                latency: 1
            }),
            Err(SessionError::UnknownClass(5))
        );
        // Rejected edits leave the instance untouched.
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_edges(), 3);
        assert_eq!(s.edits_applied(), 0);
    }
}
