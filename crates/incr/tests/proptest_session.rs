//! Differential property tests for incremental sessions: across random
//! instances and random edit scripts, a warm session must agree with a
//! cold solver on every decision (achieved period, optimality claim,
//! schedule validity), and a script that reverts itself must replay the
//! original result bit for bit.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swp_core::{Optimality, RateOptimalScheduler, SchedulerConfig};
use swp_ddg::{Ddg, NodeId, OpClass};
use swp_incr::{EditOp, SolveSession};
use swp_machine::{FuType, Machine, ReservationTable};

fn gen_machine(rng: &mut SmallRng) -> Machine {
    let classes = rng.gen_range(1..=2usize);
    let types = (0..classes)
        .map(|c| {
            let latency = rng.gen_range(1..=3);
            let reservation = if rng.gen_bool(0.3) {
                ReservationTable::non_pipelined(rng.gen_range(1..=2))
            } else {
                ReservationTable::clean(rng.gen_range(1..=2))
            };
            FuType {
                name: format!("C{c}"),
                count: rng.gen_range(1..=2),
                latency,
                reservation,
            }
        })
        .collect();
    Machine::new(types).expect("counts are positive")
}

fn gen_ddg(rng: &mut SmallRng, machine: &Machine) -> Ddg {
    let n = rng.gen_range(2..=5usize);
    let mut g = Ddg::new();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| {
            let class = OpClass::new(rng.gen_range(0..machine.num_classes()));
            let latency = machine.latency(class).expect("class in range");
            g.add_node(format!("n{i}"), class, latency)
        })
        .collect();
    for i in 1..n {
        if rng.gen_bool(0.7) {
            let p = rng.gen_range(0..i);
            g.add_edge(ids[p], ids[i], 0).expect("valid ids");
        }
    }
    if rng.gen_bool(0.4) {
        let k = rng.gen_range(0..n);
        g.add_edge(ids[k], ids[k], rng.gen_range(1..=2))
            .expect("valid ids");
    }
    g
}

/// One random, always-applicable edit for the session's current shape.
fn gen_edit(rng: &mut SmallRng, s: &mut SolveSession) -> Option<EditOp> {
    let n = s.num_nodes();
    for _ in 0..8 {
        let op = match rng.gen_range(0u32..4) {
            0 => EditOp::AddNode {
                name: format!("x{}", s.edits_applied()),
                class: rng.gen_range(0..s.machine().num_classes()),
                latency: 1,
            },
            1 if n > 2 => EditOp::RemoveNode {
                index: rng.gen_range(0..n),
            },
            2 if n >= 2 => {
                // Forward edge or distance->=1 back edge: never creates a
                // zero-distance cycle, so the instance stays solvable.
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                let (src, dst) = (a.min(b), a.max(b));
                if src == dst {
                    continue;
                }
                EditOp::AddEdge {
                    src,
                    dst,
                    distance: 0,
                }
            }
            _ => {
                if s.num_edges() == 0 {
                    continue;
                }
                let ddg = s.ddg();
                let edges: Vec<_> = ddg
                    .edges()
                    .map(|e| (e.src.index(), e.dst.index(), e.distance))
                    .collect();
                let (src, dst, distance) = edges[rng.gen_range(0..edges.len())];
                EditOp::RemoveEdge { src, dst, distance }
            }
        };
        return Some(op);
    }
    None
}

/// The decision triple the differential obligation covers.
#[derive(Debug, PartialEq, Eq)]
enum Decision {
    Feasible { period: u32, proven: bool },
    NoSchedule,
}

fn decide(r: &Result<swp_core::ScheduleResult, swp_core::ScheduleError>) -> Decision {
    match r {
        Ok(res) => Decision::Feasible {
            period: res.schedule.initiation_interval(),
            proven: matches!(res.optimality, Optimality::Proven),
        },
        Err(_) => Decision::NoSchedule,
    }
}

fn config() -> SchedulerConfig {
    SchedulerConfig {
        max_t_above_lb: 8,
        ..SchedulerConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// For any instance and any edit script, every step of the warm
    /// session agrees with a cold solve of the same instance on the
    /// decision triple, and the session's schedule passes the
    /// cycle-accurate checker.
    #[test]
    fn session_matches_cold_at_every_step(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let machine = gen_machine(&mut rng);
        let ddg = gen_ddg(&mut rng, &machine);
        let mut session = SolveSession::from_ddg(machine.clone(), config(), &ddg);
        let cold_cfg = SchedulerConfig { warm_sweep: false, ..config() };
        let cold = RateOptimalScheduler::new(machine.clone(), cold_cfg);
        let steps = rng.gen_range(1..=3usize);
        for step in 0..=steps {
            if step > 0 {
                let Some(op) = gen_edit(&mut rng, &mut session) else { break };
                session.apply(&op).expect("generated edits are valid");
            }
            let warm_res = session.solve();
            let cold_res = cold.schedule(session.ddg());
            prop_assert_eq!(
                decide(&warm_res),
                decide(&cold_res),
                "step {} of seed {} diverged",
                step,
                seed
            );
            if let Ok(res) = &warm_res {
                prop_assert!(
                    res.schedule.validate(session.ddg(), &machine).is_ok(),
                    "warm schedule failed the checker at step {}",
                    step
                );
            }
        }
    }

    /// A script that reverts itself replays the original solve bit for
    /// bit: same schedule, same optimality, same attempt outcomes.
    #[test]
    fn revert_scripts_replay_bit_for_bit(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let machine = gen_machine(&mut rng);
        let ddg = gen_ddg(&mut rng, &machine);
        let mut session = SolveSession::from_ddg(machine, config(), &ddg);
        let before = session.solve();
        let fp = session.fingerprint();
        // Tighten then revert (edge), or grow then revert (node).
        if rng.gen_bool(0.5) && session.num_nodes() >= 2 {
            let (src, dst) = (0, session.num_nodes() - 1);
            if src != dst {
                session.apply(&EditOp::AddEdge { src, dst, distance: 1 }).expect("apply");
                let _ = session.solve();
                session.apply(&EditOp::RemoveEdge { src, dst, distance: 1 }).expect("apply");
            }
        } else {
            session.apply(&EditOp::AddNode { name: "tmp".into(), class: 0, latency: 1 })
                .expect("apply");
            let _ = session.solve();
            let last = session.num_nodes() - 1;
            session.apply(&EditOp::RemoveNode { index: last }).expect("apply");
        }
        prop_assert_eq!(session.fingerprint(), fp, "revert must restore the fingerprint");
        let after = session.solve();
        match (&before, &after) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.schedule, &b.schedule);
                prop_assert_eq!(a.optimality.is_proven(), b.optimality.is_proven());
                prop_assert_eq!(a.attempts.len(), b.attempts.len());
                for (x, y) in a.attempts.iter().zip(&b.attempts) {
                    prop_assert_eq!(x.period, y.period);
                    prop_assert_eq!(&x.outcome, &y.outcome);
                }
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "verdicts differ: {a:?} vs {b:?}"),
        }
    }
}
