//! Kernel code generation: turning a periodic schedule into the flat
//! prolog / kernel / epilog structure a compiler back end would emit
//! (the shape of the paper's Table 2), with *modulo variable expansion*
//! for values whose lifetimes span multiple iterations.
//!
//! The schedule says instruction `i` of iteration `j` issues at
//! `j·T + t_i`. With `S = max_i k_i + 1` pipeline stages, the steady
//! state overlaps `S` iterations: the **kernel** is one period of that
//! steady state, the **prolog** ramps iterations `0..S−1` in, and the
//! **epilog** drains them. A value produced by `i` and still live while
//! `i` executes again needs more than one register; each node gets
//! `copies(i) = max over out-edges (i, j) of ⌈(t_j − t_i)/T⌉ + m_ij`
//! names, cycled per iteration (`v3#0, v3#1, …`) — Lam's modulo variable
//! expansion, sized by the Ning–Gao buffer count.

use std::fmt;
use swp_ddg::{Ddg, NodeId};
use swp_machine::{Machine, PipelinedSchedule};

/// One operation slot in the flat program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotOp {
    /// The DDG node.
    pub node: NodeId,
    /// Which iteration instance this is (0-based).
    pub iteration: u32,
    /// The physical unit, if the schedule is mapped.
    pub fu: Option<u32>,
    /// The destination register name after modulo variable expansion.
    pub dest: String,
    /// Source register names, one per incoming dependence.
    pub sources: Vec<String>,
}

/// One cycle of the flat program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CycleRow {
    /// Absolute cycle.
    pub cycle: u64,
    /// Operations issuing this cycle.
    pub ops: Vec<SlotOp>,
}

/// Which phase a cycle belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Ramp-in: iterations are still being started for the first time.
    Prolog,
    /// One period of the steady state — the loop body that repeats.
    Kernel,
    /// Drain: no new iterations start, in-flight ones finish.
    Epilog,
}

/// The generated flat program.
#[derive(Debug, Clone)]
pub struct KernelCode {
    rows: Vec<CycleRow>,
    kernel_start: u64,
    kernel_end: u64,
    steady_end: u64,
    copies: Vec<u32>,
    period: u32,
}

impl KernelCode {
    /// All cycles in order (empty cycles included inside phases).
    pub fn rows(&self) -> &[CycleRow] {
        &self.rows
    }

    /// The phase of an absolute cycle. The kernel phase covers the whole
    /// steady-state region (the pattern repeating once per period while
    /// new iterations still issue); [`KernelCode::kernel_range`] gives
    /// one canonical period of it.
    pub fn phase(&self, cycle: u64) -> Phase {
        if cycle < self.kernel_start || self.kernel_start >= self.steady_end {
            if cycle < self.steady_end {
                Phase::Prolog
            } else {
                Phase::Epilog
            }
        } else if cycle < self.steady_end {
            Phase::Kernel
        } else {
            Phase::Epilog
        }
    }

    /// Cycle range `[start, end)` of the kernel (one steady-state period).
    pub fn kernel_range(&self) -> (u64, u64) {
        (self.kernel_start, self.kernel_end)
    }

    /// Register copies allocated to each node by modulo variable
    /// expansion (1 = no expansion needed).
    pub fn register_copies(&self) -> &[u32] {
        &self.copies
    }

    /// Total register names emitted.
    pub fn total_registers(&self) -> u32 {
        self.copies.iter().sum()
    }

    /// The initiation interval of the underlying schedule.
    pub fn period(&self) -> u32 {
        self.period
    }
}

/// Generates the flat program for `iterations` iterations of the loop.
///
/// `iterations` should be at least the pipeline depth `S` for a kernel
/// to exist; fewer iterations produce a prolog/epilog-only program.
///
/// # Panics
///
/// Panics if the schedule and DDG disagree on the number of nodes.
pub fn generate(
    schedule: &PipelinedSchedule,
    ddg: &Ddg,
    _machine: &Machine,
    iterations: u32,
) -> KernelCode {
    assert_eq!(
        schedule.num_ops(),
        ddg.num_nodes(),
        "schedule and DDG must describe the same loop"
    );
    let t = schedule.initiation_interval();
    let n = ddg.num_nodes();

    // Modulo-variable-expansion copy counts from buffer demand.
    let mut copies = vec![1u32; n];
    let (per_edge, _) = schedule.buffer_requirements(ddg);
    for (e, &b) in ddg.edges().zip(&per_edge) {
        let c = &mut copies[e.src.index()];
        *c = (*c).max(b.max(1));
    }

    let reg_name = |node: NodeId, iteration: u32| {
        let c = copies[node.index()];
        format!("v{}#{}", node.index(), iteration % c)
    };

    // Emit all issue events.
    let mut rows: std::collections::BTreeMap<u64, CycleRow> = std::collections::BTreeMap::new();
    for j in 0..iterations {
        for (id, _) in ddg.nodes() {
            let cycle = j as u64 * t as u64 + schedule.start_time(id) as u64;
            let sources = ddg
                .edges()
                .filter(|e| e.dst == id)
                .filter_map(|e| {
                    // The producing instance is from iteration j − m.
                    let src_iter = j.checked_sub(e.distance)?;
                    Some(reg_name(e.src, src_iter))
                })
                .collect();
            let row = rows.entry(cycle).or_insert_with(|| CycleRow {
                cycle,
                ops: Vec::new(),
            });
            row.ops.push(SlotOp {
                node: id,
                iteration: j,
                fu: schedule.fu(id),
                dest: reg_name(id, j),
                sources,
            });
        }
    }

    // Steady state exists once the deepest-stage iteration has started:
    // kernel = the period starting at (S − 1)·T, where S = max k + 1.
    let s = ddg.node_ids().map(|id| schedule.k(id)).max().unwrap_or(0) + 1;
    let kernel_start = (s.saturating_sub(1)) as u64 * t as u64;
    let kernel_end = kernel_start + t as u64;
    // New iterations stop issuing after the last one starts; everything
    // from there on is drain.
    let steady_end = iterations as u64 * t as u64;

    KernelCode {
        rows: rows.into_values().collect(),
        kernel_start,
        kernel_end,
        steady_end,
        copies,
        period: t,
    }
}

impl fmt::Display for KernelCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut phase = None;
        for row in &self.rows {
            let p = self.phase(row.cycle);
            if phase != Some(p) {
                writeln!(
                    f,
                    "; ---- {} ----",
                    match p {
                        Phase::Prolog => "prolog",
                        Phase::Kernel => "kernel (the T-cycle pattern, repeating)",
                        Phase::Epilog => "epilog",
                    }
                )?;
                phase = Some(p);
            }
            write!(f, "{:>5}: ", row.cycle)?;
            for (i, op) in row.ops.iter().enumerate() {
                if i > 0 {
                    write!(f, " || ")?;
                }
                let unit = match op.fu {
                    Some(u) => format!("@fu{u}"),
                    None => String::new(),
                };
                write!(
                    f,
                    "{} = op{}.it{}({}){}",
                    op.dest,
                    op.node.index(),
                    op.iteration,
                    op.sources.join(", "),
                    unit
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RateOptimalScheduler, SchedulerConfig};
    use swp_ddg::OpClass;

    fn schedule_motivating() -> (Ddg, Machine, PipelinedSchedule) {
        let mut g = Ddg::new();
        let ld = g.add_node("load", OpClass::new(2), 3);
        let fm = g.add_node("fmul", OpClass::new(1), 2);
        let st = g.add_node("store", OpClass::new(2), 3);
        g.add_edge(ld, fm, 0).unwrap();
        g.add_edge(fm, fm, 1).unwrap();
        g.add_edge(fm, st, 0).unwrap();
        let m = Machine::example_pldi95();
        let r = RateOptimalScheduler::new(m.clone(), SchedulerConfig::default())
            .schedule(&g)
            .expect("schedulable");
        (g, m, r.schedule)
    }

    #[test]
    fn kernel_contains_every_op_exactly_once() {
        let (g, m, s) = schedule_motivating();
        let code = generate(&s, &g, &m, 8);
        let (ks, ke) = code.kernel_range();
        let kernel_ops: Vec<_> = code
            .rows()
            .iter()
            .filter(|r| r.cycle >= ks && r.cycle < ke)
            .flat_map(|r| r.ops.iter())
            .collect();
        assert_eq!(kernel_ops.len(), g.num_nodes());
        let mut nodes: Vec<usize> = kernel_ops.iter().map(|o| o.node.index()).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 2]);
    }

    #[test]
    fn phases_partition_the_program() {
        let (g, m, s) = schedule_motivating();
        let code = generate(&s, &g, &m, 6);
        let mut seen_kernel = false;
        let mut seen_epilog = false;
        for row in code.rows() {
            match code.phase(row.cycle) {
                Phase::Prolog => {
                    assert!(!seen_kernel && !seen_epilog, "prolog after kernel");
                }
                Phase::Kernel => {
                    assert!(!seen_epilog, "kernel after epilog");
                    seen_kernel = true;
                }
                Phase::Epilog => seen_epilog = true,
            }
        }
        assert!(seen_kernel);
        assert!(seen_epilog);
    }

    #[test]
    fn modulo_variable_expansion_sizes_from_buffers() {
        let (g, m, s) = schedule_motivating();
        let code = generate(&s, &g, &m, 6);
        let (per_edge, _) = s.buffer_requirements(&g);
        // Every producing node gets at least its largest edge demand.
        for (e, &b) in g.edges().zip(&per_edge) {
            assert!(code.register_copies()[e.src.index()] >= b.max(1));
        }
        assert!(code.total_registers() >= g.num_nodes() as u32);
    }

    #[test]
    fn sources_reference_previously_written_names() {
        let (g, m, s) = schedule_motivating();
        let code = generate(&s, &g, &m, 8);
        let mut written = std::collections::HashSet::new();
        for row in code.rows() {
            // Reads of this cycle must have been written strictly earlier
            // (latencies are >= 1, so same-cycle forwarding cannot occur).
            for op in &row.ops {
                for src in &op.sources {
                    assert!(
                        written.contains(src),
                        "cycle {}: {src} read before written",
                        row.cycle
                    );
                }
            }
            for op in &row.ops {
                written.insert(op.dest.clone());
            }
        }
    }

    #[test]
    fn display_marks_all_phases() {
        let (g, m, s) = schedule_motivating();
        let text = generate(&s, &g, &m, 6).to_string();
        assert!(text.contains("prolog"));
        assert!(text.contains("kernel"));
        assert!(text.contains("epilog"));
        assert!(text.contains("v1#"));
    }
}
