//! The rate-optimal scheduling driver.
//!
//! Finding the minimum `T` is done exactly as in the paper's evaluation:
//! compute `T_lb = max(T_dep, T_res)`, then solve the unified ILP at
//! `T = T_lb, T_lb+1, …` until one is feasible. The first feasible period
//! is rate-optimal by construction (every smaller period is infeasible —
//! either proven by the ILP or excluded by the lower bound).
//!
//! # Budgets and graceful degradation
//!
//! [`RateOptimalScheduler::schedule_with`] threads a shared
//! [`swp_milp::Budget`] (wall-clock deadline, deterministic tick cap,
//! cooperative cancel token) through every engine: simplex pivots,
//! branch-and-bound nodes, and IMS placements all spend ticks from the
//! same pool. When the budget runs out mid-search the driver does not
//! error: it falls back to a best-effort heuristic schedule found under a
//! small fresh tick allowance and tags the result
//! [`Optimality::BudgetExhausted`], recording how far the exact refutation
//! got. Cancellation is different — a fired token means the caller wants
//! out *now*, so it surfaces as [`ScheduleError::Cancelled`].
//!
//! # Self-verification
//!
//! Every schedule — from the ILP or the heuristic — is re-checked by the
//! independent cycle-accurate checker ([`PipelinedSchedule::validate`])
//! before it leaves the driver. A rejected schedule triggers fallback to
//! the other engine; only if both fail does the driver return
//! [`ScheduleError::VerificationFailed`].

use crate::formulation::{self, FormulationOptions, MappingMode, Objective};
use crate::ScheduleError;
use std::sync::{mpsc, Arc};
use std::time::Duration;
use swp_automata::HazardAutomaton;
use swp_cpsat::{CpError, CpOptions, CpOutcome};
use swp_ddg::{Ddg, OpClass};
use swp_heuristics::{HeuristicError, IterativeModuloScheduler};
use swp_machine::Machine;
use swp_machine::{DataLayout, PipelinedSchedule, ValidationError};
use swp_milp::{Budget, Exhaustion, NodePruner, SolveError, SolveLimits};

/// Tick allowance for the best-effort heuristic pass that runs after the
/// main budget is exhausted. Ticks (one per IMS placement) rather than
/// wall-clock, so the grace pass works even when the deadline is already
/// past, and stays bounded deterministically.
const GRACE_TICKS: u64 = 200_000;

/// Test-only fault injection: forces failures at chosen pipeline stages
/// so the degradation paths can be exercised deterministically. All
/// fields default to `false` (no faults). Not part of the public API
/// contract.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Pretend the heuristic incumbent probe found nothing.
    pub fail_heuristic_incumbent: bool,
    /// Pretend every ILP solve failed numerically
    /// ([`SolveError::Numerical`]).
    pub fail_ilp: bool,
    /// Treat every ILP-produced schedule as failing verification.
    pub reject_ilp_schedule: bool,
    /// Treat every heuristic-produced schedule as failing verification.
    pub reject_heuristic_schedule: bool,
    /// Pretend the global budget is already exhausted before the first
    /// candidate period.
    pub expire_before_search: bool,
    /// Pretend the global budget expires right before the ILP stage of
    /// the first attempted period.
    pub expire_before_ilp: bool,
    /// Panic inside the driver before the first candidate period —
    /// exercises crash isolation (`catch_unwind` supervision) in
    /// embedders like the `swpd` daemon without corrupting any engine
    /// state: the panic fires before any solver structure is built.
    pub panic_in_solver: bool,
}

/// Which engine answers structural-conflict queries throughout the
/// pipeline (`T_res` refinement, IMS slot probing, branch-and-bound
/// pruning, and final schedule verification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictOracleMode {
    /// Naive reservation-table cell scans everywhere (the seed
    /// behaviour). Always available; the reference semantics.
    #[default]
    Scan,
    /// Precomputed hazard automata ([`swp_automata`]): pairwise modulo
    /// collision matrices plus a cyclic hazard FSA per class, memoized
    /// per `(machine, T)`. Answers the same queries in O(1) per probe.
    /// Decision-equivalent to [`ConflictOracleMode::Scan`] — every
    /// fast-path answer is `debug_assert`-checked against the exact scan
    /// in test builds, and the checker falls back to the exact scan
    /// whenever the automaton cannot answer.
    Automaton,
}

/// Which exact engine settles each candidate period (after the optional
/// IMS incumbent probe, which is engine-independent).
///
/// The CP backend implements the unified-coloring feasibility problem
/// only; under [`MappingMode::CapacityOnly`] or a non-`Feasible`
/// [`Objective`] the driver transparently uses the ILP regardless of
/// this setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The unified ILP (simplex + branch-and-bound). The seed behaviour.
    #[default]
    Ilp,
    /// The constraint-propagation backend (`swp-cpsat`): offset/color
    /// search with interval, capacity, and hazard-automaton propagators
    /// plus no-good recording. Proven-exact, decision-equivalent to the
    /// ILP.
    Cp,
    /// Race both exact engines on isolated slices of the per-period
    /// budget; the first proven answer (feasible schedule or exact
    /// refutation) wins and cancels the loser. Per-period win/loss
    /// telemetry lands in [`PeriodAttempt::race`] and [`SolverStats`].
    Portfolio,
}

/// Configuration for [`RateOptimalScheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// How mapping is handled (default: the paper's unified coloring).
    pub mapping: MappingMode,
    /// Objective at each fixed `T` (default: pure feasibility).
    pub objective: Objective,
    /// ILP budget per candidate period (default 10 s).
    pub time_limit_per_t: Option<Duration>,
    /// Wall-clock budget for the *whole* search across all candidate
    /// periods (default: none). When it runs out, the driver returns the
    /// best schedule it can still certify, tagged
    /// [`Optimality::BudgetExhausted`]. For tick caps or cancellation use
    /// [`RateOptimalScheduler::schedule_with`] directly.
    pub time_limit_total: Option<Duration>,
    /// Give up after `T_lb + max_t_above_lb` (default 16).
    pub max_t_above_lb: u32,
    /// Prune rotation and color-permutation symmetry (default on).
    pub symmetry_breaking: bool,
    /// Use the exact class-packing capacity to refine `T_res` and reject
    /// impossible periods before solving (default on; ablatable).
    pub packing_bound: bool,
    /// Try iterative modulo scheduling at each candidate period before
    /// the ILP (default on). A heuristic schedule at `T` is a feasibility
    /// certificate, so rate-optimality is unaffected: every smaller
    /// period has still been refuted exactly. Turn off to measure pure
    /// ILP behaviour (Table 5).
    pub heuristic_incumbent: bool,
    /// Conflict-query engine for the whole pipeline (default: naive
    /// scans). See [`ConflictOracleMode`].
    pub conflict_oracle: ConflictOracleMode,
    /// Which exact engine settles each candidate period (default: the
    /// ILP). See [`Engine`].
    pub engine: Engine,
    /// Carry warm hints (simplex basis, CP no-goods, schedule hints)
    /// across the `T`-sweep and across solves sharing a [`WarmState`]
    /// (default on). Hints are re-validated before use and can never
    /// change a verdict; turn off for a strictly cold, hint-free solve —
    /// the pre-warm-start behaviour, byte for byte.
    pub warm_sweep: bool,
    /// Cell layout of the reservation-table hot paths — the IMS modulo
    /// reservation table and the independent collision checker (default:
    /// [`DataLayout::Flat`], word-parallel bitsets). Decisions are
    /// bit-identical across layouts; only probe cost changes. Select
    /// [`DataLayout::Legacy`] for the seed's per-cell scan, e.g. for A/B
    /// timing.
    pub data_layout: DataLayout,
    /// Register-pressure cap (default: none). When set, every engine —
    /// ILP rows, CP propagation, the IMS incumbent probe — bounds the
    /// number of simultaneously live values per pattern residue by this
    /// limit, and the independent checker re-verifies it
    /// ([`PipelinedSchedule::validate_pressure`]). Refutations at a
    /// period are then refutations *under the cap*: a tighter cap can
    /// only raise the proven-optimal `T`.
    pub max_live: Option<u32>,
    /// Test-only fault injection; leave at `Default::default()`.
    #[doc(hidden)]
    pub faults: FaultPlan,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            mapping: MappingMode::default(),
            objective: Objective::default(),
            time_limit_per_t: Some(Duration::from_secs(10)),
            time_limit_total: None,
            max_t_above_lb: 16,
            symmetry_breaking: true,
            packing_bound: true,
            heuristic_incumbent: true,
            conflict_oracle: ConflictOracleMode::default(),
            engine: Engine::default(),
            warm_sweep: true,
            data_layout: DataLayout::default(),
            max_live: None,
            faults: FaultPlan::default(),
        }
    }
}

/// Which engine settled a candidate period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolvedBy {
    /// The unified ILP.
    Ilp,
    /// The constraint-propagation backend (`swp-cpsat`).
    Cp,
    /// The iterative-modulo-scheduling certificate (see
    /// [`SchedulerConfig::heuristic_incumbent`]).
    Heuristic,
}

/// One of the two exact engines in a portfolio race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceEngine {
    /// The unified ILP.
    Ilp,
    /// The constraint-propagation backend.
    Cp,
}

/// What happened in one portfolio race (attached to the attempt of the
/// raced period).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceReport {
    /// The engine whose proven answer settled the period first, or
    /// `None` when neither produced one (both exhausted or failed).
    pub winner: Option<RaceEngine>,
    /// Whether the losing engine was stopped by the winner's
    /// cancellation (as opposed to finishing — or failing — on its own
    /// before the cancel landed).
    pub loser_cancelled: bool,
    /// Ticks the ILP racer spent on its isolated budget slice.
    pub ilp_ticks: u64,
    /// Ticks the CP racer spent on its isolated budget slice.
    pub cp_ticks: u64,
}

/// Outcome of one candidate period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeriodOutcome {
    /// A schedule was found (and passed the independent re-check).
    Feasible(SolvedBy),
    /// The ILP proved no schedule exists at this period.
    Infeasible,
    /// Rejected before solving (modulo constraint / self-loop test).
    RejectedAtBuild,
    /// The time, node, or tick budget ran out undecided.
    TimedOut,
    /// The ILP failed numerically at this period (simplex stall); the
    /// period stays undecided unless the heuristic certifies it.
    EngineFailed,
}

/// Statistics for one candidate period.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodAttempt {
    /// The candidate period.
    pub period: u32,
    /// What happened.
    pub outcome: PeriodOutcome,
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
    /// Simplex iterations across the search.
    pub lp_iterations: u64,
    /// Wall-clock spent on this period.
    pub elapsed: Duration,
    /// Variables in the ILP (0 if rejected at build or settled by CP).
    pub num_vars: usize,
    /// Constraints in the ILP (0 if rejected at build or settled by CP).
    pub num_constrs: usize,
    /// Portfolio-race telemetry (`None` outside portfolio mode).
    pub race: Option<RaceReport>,
}

/// Aggregated solver-effort statistics over a per-period attempt log —
/// the telemetry exported per loop by the corpus-execution harness.
///
/// Built with [`SolverStats::from_attempts`], which works for both the
/// success path ([`ScheduleResult::solver_stats`]) and the failure path
/// (the `attempts` carried by [`ScheduleError::NotFound`]).
///
/// [`ScheduleError::NotFound`]: crate::ScheduleError::NotFound
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Simplex iterations (pivots) across all attempted periods.
    pub lp_iterations: u64,
    /// Branch-and-bound nodes across all attempted periods.
    pub bb_nodes: u64,
    /// Candidate periods attempted (including build-time rejections).
    pub periods_attempted: u32,
    /// Periods settled feasible by the unified ILP.
    pub ilp_feasible: u32,
    /// Periods settled feasible by the CP backend.
    pub cp_feasible: u32,
    /// Periods settled feasible by the IMS certificate.
    pub heuristic_feasible: u32,
    /// Periods proven infeasible (exact refutations, either by the ILP or
    /// at formulation build time).
    pub refuted: u32,
    /// Periods left undecided by a time/tick budget trip.
    pub timeouts: u32,
    /// Periods on which the exact engine failed numerically.
    pub engine_failures: u32,
    /// Portfolio races run (periods attempted in portfolio mode).
    pub races: u32,
    /// Races the CP backend settled first.
    pub race_cp_wins: u32,
    /// Races the ILP settled first.
    pub race_ilp_wins: u32,
    /// Races neither engine settled (both exhausted or failed).
    pub race_undecided: u32,
    /// Races whose losing engine was stopped by cancellation.
    pub race_losers_cancelled: u32,
}

impl SolverStats {
    /// Aggregates an attempt log.
    pub fn from_attempts(attempts: &[PeriodAttempt]) -> SolverStats {
        let mut s = SolverStats {
            periods_attempted: attempts.len() as u32,
            ..SolverStats::default()
        };
        for a in attempts {
            s.lp_iterations += a.lp_iterations;
            s.bb_nodes += a.nodes;
            match a.outcome {
                PeriodOutcome::Feasible(SolvedBy::Ilp) => s.ilp_feasible += 1,
                PeriodOutcome::Feasible(SolvedBy::Cp) => s.cp_feasible += 1,
                PeriodOutcome::Feasible(SolvedBy::Heuristic) => s.heuristic_feasible += 1,
                PeriodOutcome::Infeasible | PeriodOutcome::RejectedAtBuild => s.refuted += 1,
                PeriodOutcome::TimedOut => s.timeouts += 1,
                PeriodOutcome::EngineFailed => s.engine_failures += 1,
            }
            if let Some(r) = a.race {
                s.races += 1;
                match r.winner {
                    Some(RaceEngine::Cp) => s.race_cp_wins += 1,
                    Some(RaceEngine::Ilp) => s.race_ilp_wins += 1,
                    None => s.race_undecided += 1,
                }
                if r.loser_cancelled {
                    s.race_losers_cancelled += 1;
                }
            }
        }
        s
    }

    /// Whether any attempted period was left undecided by a budget trip.
    pub fn any_timeout(&self) -> bool {
        self.timeouts > 0
    }
}

/// How strong the optimality claim on a [`ScheduleResult`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Optimality {
    /// Every period below the achieved one was proven infeasible: the
    /// achieved period is the exact optimum.
    Proven,
    /// The budget ran out before every smaller period could be refuted.
    BudgetExhausted {
        /// The smallest candidate period whose refutation is missing.
        /// Every period below it *was* proven infeasible, so the true
        /// optimal period lies in
        /// `smallest_refuted ..= schedule.initiation_interval()`.
        smallest_refuted: u32,
    },
}

impl Optimality {
    /// Whether the achieved period is proven exactly optimal.
    pub fn is_proven(&self) -> bool {
        matches!(self, Optimality::Proven)
    }
}

/// Telemetry for warm-started solving: what a [`WarmState`] actually
/// bought across a sweep (and, at the session layer, across edits).
///
/// Counters are cumulative over the life of the `WarmState`; callers
/// snapshot-and-diff per solve. All reuse is *hint-shaped* — it can
/// change effort counters, never verdicts — except `periods_skipped`,
/// which relies on the caller's proof obligations (see
/// [`WarmState::start_at`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Root LPs that were crash-started from a carried simplex basis.
    pub basis_hits: u64,
    /// Root bases exported for the next solve.
    pub basis_exports: u64,
    /// CP no-good clauses replayed from the carried store.
    pub nogood_replays: u64,
    /// IMS probes settled by validating the carried schedule hint.
    pub ims_hint_hits: u64,
    /// Sweep periods skipped because the caller carried their proven
    /// refutations across ([`WarmState::start_at`]).
    pub periods_skipped: u64,
    /// Whole solves answered by replaying a fingerprint-identical cached
    /// result (filled by the session layer, not this driver).
    pub replays: u64,
    /// Total size of dependency cones invalidated by edits (filled by
    /// the session layer, not this driver).
    pub cone_nodes: u64,
}

impl ReuseStats {
    /// Merges `other` into `self` (all counters are additive).
    pub fn absorb(&mut self, other: &ReuseStats) {
        self.basis_hits += other.basis_hits;
        self.basis_exports += other.basis_exports;
        self.nogood_replays += other.nogood_replays;
        self.ims_hint_hits += other.ims_hint_hits;
        self.periods_skipped += other.periods_skipped;
        self.replays += other.replays;
        self.cone_nodes += other.cone_nodes;
    }
}

/// Cross-solve state for warm-started sweeps, owned by the caller (an
/// incremental session, or the harness's per-loop sweep) and threaded
/// through [`RateOptimalScheduler::schedule_with_warm`].
///
/// Everything here is a **hint** except `start_at`: bases and schedule
/// hints are re-validated (crash ratio test, cycle-accurate checker)
/// before use, and CP no-goods are replayed only under the period match
/// the store enforces itself, so a stale `WarmState` can cost extra work
/// but never change a verdict. `start_at` is the one trusted field — it
/// skips sweep periods outright, and the caller must only set it from
/// refutations it has proven (or carried monotonically) for the *exact*
/// instance being solved.
#[derive(Default)]
pub struct WarmState {
    /// Simplex basis from the previous root relaxation, keyed by
    /// variable name so it survives the `T → T+1` model re-build.
    pub basis_names: Option<Vec<String>>,
    /// Last known-good schedule, used to seed the IMS incumbent probe
    /// and re-validated by the checker before it counts.
    pub ims_hint: Option<PipelinedSchedule>,
    /// CP no-good store; self-flushes when the period changes. The
    /// caller must [`clear`](swp_cpsat::NoGoodStore::clear) it on any
    /// non-tightening edit.
    pub nogoods: swp_cpsat::NoGoodStore,
    /// First period the sweep should attempt; every period in
    /// `t_lb..start_at` is treated as already refuted. Trusted — see the
    /// type docs.
    pub start_at: Option<u32>,
    /// Cumulative reuse telemetry.
    pub reuse: ReuseStats,
}

impl WarmState {
    /// A fresh, empty warm state (identical behaviour to a cold solve).
    pub fn new() -> Self {
        Self::default()
    }
}

/// A schedule together with how it was found.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// The schedule (always re-checked by the cycle-accurate checker).
    pub schedule: PipelinedSchedule,
    /// Recurrence bound `T_dep`.
    pub t_dep: u32,
    /// Resource bound `T_res`.
    pub t_res: u32,
    /// Per-period solve log, in the order attempted.
    pub attempts: Vec<PeriodAttempt>,
    /// Whether the achieved period is proven optimal or budget-limited.
    pub optimality: Optimality,
}

impl ScheduleResult {
    /// Combined lower bound `max(T_dep, T_res)`.
    pub fn t_lb(&self) -> u32 {
        self.t_dep.max(self.t_res)
    }

    /// `T − T_lb`: zero means provably rate-optimal.
    pub fn slack_above_lb(&self) -> u32 {
        self.schedule.initiation_interval() - self.t_lb()
    }

    /// Whether the achieved period equals the lower bound.
    pub fn is_rate_optimal(&self) -> bool {
        self.slack_above_lb() == 0
    }

    /// Whether every smaller period was refuted (see [`Optimality`]).
    pub fn is_proven_optimal(&self) -> bool {
        self.optimality.is_proven()
    }

    /// Total branch-and-bound nodes over all attempted periods.
    pub fn total_nodes(&self) -> u64 {
        self.attempts.iter().map(|a| a.nodes).sum()
    }

    /// Total simplex iterations over all attempted periods.
    pub fn total_lp_iterations(&self) -> u64 {
        self.attempts.iter().map(|a| a.lp_iterations).sum()
    }

    /// Aggregated solver-effort telemetry over the attempt log.
    pub fn solver_stats(&self) -> SolverStats {
        SolverStats::from_attempts(&self.attempts)
    }

    /// Engine that produced the final schedule (the last feasible
    /// attempt), defaulting to the ILP for legacy logs without one.
    pub fn solved_by(&self) -> SolvedBy {
        self.attempts
            .iter()
            .rev()
            .find_map(|a| match a.outcome {
                PeriodOutcome::Feasible(s) => Some(s),
                _ => None,
            })
            .unwrap_or(SolvedBy::Ilp)
    }

    /// Total wall-clock over all attempted periods.
    pub fn total_elapsed(&self) -> Duration {
        self.attempts.iter().map(|a| a.elapsed).sum()
    }
}

/// What one exact engine concluded about one candidate period, before
/// the driver turns it into an attempt-log entry (and possibly a
/// fallback). Normalizing both engines onto this type is what lets the
/// ILP path, the CP path, and the portfolio race share one settlement
/// routine.
enum ExactVerdict {
    /// A candidate schedule (not yet re-verified by the checker).
    Feasible {
        starts: Vec<u32>,
        units: Vec<Option<u32>>,
        nodes: u64,
        lp_iterations: u64,
        num_vars: usize,
        num_constrs: usize,
    },
    /// Proven infeasible; `at_build` means rejected before any search.
    Refuted {
        at_build: bool,
        num_vars: usize,
        num_constrs: usize,
    },
    /// The per-period budget ran out undecided.
    Limit { num_vars: usize, num_constrs: usize },
    /// The cancel token fired mid-solve.
    Cancelled,
    /// The engine failed on this instance (numerical stall, or a colored
    /// class too wide for the CP backend's 64-bit unit domains).
    Failed { num_vars: usize, num_constrs: usize },
    /// A hard error to propagate to the caller.
    Error(ScheduleError),
}

/// What one candidate period contributed to the search.
enum PeriodResult {
    /// A verified schedule.
    Schedule(PipelinedSchedule),
    /// Proven infeasible (exact refutation).
    Refuted,
    /// Ran out of per-period budget (or failed numerically) undecided.
    Undecided,
    /// The *global* budget is exhausted; stop probing periods.
    BudgetExhausted,
}

/// Schedules loops at the fastest feasible initiation rate using the
/// paper's unified ILP.
///
/// ```
/// use swp_core::{RateOptimalScheduler, SchedulerConfig};
/// use swp_ddg::{Ddg, OpClass};
/// use swp_machine::Machine;
///
/// # fn main() -> Result<(), swp_core::ScheduleError> {
/// let mut g = Ddg::new();
/// let ld = g.add_node("load", OpClass::new(2), 3);
/// let fm = g.add_node("fmul", OpClass::new(1), 2);
/// g.add_edge(ld, fm, 0).unwrap();
///
/// let sched = RateOptimalScheduler::new(Machine::example_pldi95(), SchedulerConfig::default())
///     .schedule(&g)?;
/// assert!(sched.optimality.is_proven());
/// assert!(sched.schedule.validate(&g, &Machine::example_pldi95()).is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RateOptimalScheduler {
    machine: Machine,
    config: SchedulerConfig,
}

impl RateOptimalScheduler {
    /// Creates a scheduler for `machine` under `config`.
    pub fn new(machine: Machine, config: SchedulerConfig) -> Self {
        RateOptimalScheduler { machine, config }
    }

    /// The machine this scheduler targets.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The configuration this scheduler runs under.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    fn use_automaton(&self) -> bool {
        self.config.conflict_oracle == ConflictOracleMode::Automaton
    }

    /// An IMS instance honouring the configured conflict oracle.
    fn ims(&self) -> IterativeModuloScheduler {
        IterativeModuloScheduler::new(self.machine.clone())
            .with_automaton(self.use_automaton())
            .with_layout(self.config.data_layout)
            .with_max_live(self.config.max_live)
    }

    /// Finds a schedule at the smallest feasible period `≥ T_lb`, under a
    /// global budget derived from
    /// [`SchedulerConfig::time_limit_total`] (unlimited if `None`).
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::NoFinitePeriod`] — zero-distance cycle;
    /// * [`ScheduleError::UnknownClass`] — DDG/machine mismatch;
    /// * [`ScheduleError::NotFound`] — every period up to the configured
    ///   cap was infeasible or timed out (the attempts log tells which)
    ///   and no best-effort schedule exists either;
    /// * [`ScheduleError::VerificationFailed`] — both engines produced
    ///   only schedules the independent checker rejected.
    pub fn schedule(&self, ddg: &Ddg) -> Result<ScheduleResult, ScheduleError> {
        let budget = match self.config.time_limit_total {
            Some(d) => Budget::with_deadline(d),
            None => Budget::unlimited(),
        };
        self.schedule_with(ddg, &budget)
    }

    /// Like [`schedule`](Self::schedule), but under an explicit shared
    /// [`Budget`] — deadline, deterministic tick cap, and a cancel token
    /// that stops all engines within one check interval.
    ///
    /// On budget exhaustion (deadline or ticks) the driver degrades
    /// gracefully: it returns the best heuristic schedule it can still
    /// find and certify, tagged [`Optimality::BudgetExhausted`].
    /// Cancellation instead returns [`ScheduleError::Cancelled`].
    ///
    /// # Errors
    ///
    /// Everything [`schedule`](Self::schedule) lists, plus
    /// [`ScheduleError::Cancelled`].
    pub fn schedule_with(
        &self,
        ddg: &Ddg,
        budget: &Budget,
    ) -> Result<ScheduleResult, ScheduleError> {
        // A scratch warm state makes this exactly the cold path: no
        // hints, no skips, byte-identical behaviour to before warm
        // starting existed.
        self.schedule_with_warm(ddg, budget, &mut WarmState::new())
    }

    /// [`Self::schedule_with`] threaded through a caller-owned
    /// [`WarmState`]: the sweep crash-starts each root LP from the basis
    /// the previous period exported, seeds the IMS incumbent probe with
    /// the carried schedule hint, replays CP no-goods where the store
    /// permits, and (when the caller proved it) skips already-refuted
    /// periods. On success the schedule is written back into
    /// [`WarmState::ims_hint`] for the caller's next solve.
    ///
    /// Warm hooks apply to the [`Engine::Ilp`] and [`Engine::Cp`] paths;
    /// a [`Engine::Portfolio`] race runs its arms cold (the race's
    /// wall-clock nondeterminism would otherwise leak into which hints
    /// get consumed), still benefiting from the hint-fed incumbent probe
    /// and the hoisted conflict oracle.
    ///
    /// # Errors
    ///
    /// As [`Self::schedule_with`].
    pub fn schedule_with_warm(
        &self,
        ddg: &Ddg,
        budget: &Budget,
        warm: &mut WarmState,
    ) -> Result<ScheduleResult, ScheduleError> {
        if self.config.faults.panic_in_solver {
            panic!("injected fault: panic_in_solver");
        }
        let t_dep = ddg.t_dep().ok_or(ScheduleError::NoFinitePeriod)?;
        let t_res = match (self.config.mapping, self.config.packing_bound) {
            // Fixed-assignment problem: counting bound, optionally
            // strengthened by the exact packing capacity. Under the
            // automaton oracle the same bound comes from the
            // forbidden-latency closure (per-unit capacity = maximum
            // independent set in the circulant conflict graph), which the
            // automaton registry then reuses for every candidate period.
            (MappingMode::UnifiedColoring, true) if self.use_automaton() => {
                let bound = swp_automata::res_mii(&self.machine, ddg);
                debug_assert_eq!(
                    bound,
                    self.machine.t_res(ddg),
                    "automaton ResMII drifted from the exact packing bound"
                );
                bound
            }
            (MappingMode::UnifiedColoring, true) => self.machine.t_res(ddg),
            (MappingMode::UnifiedColoring, false) => self.machine.t_res_counting(ddg),
            // Run-time unit choice: instances may rotate across units, so
            // only pure stage-demand counting is a valid bound.
            (MappingMode::CapacityOnly, _) => self.machine.t_res_capacity(ddg),
        }
        .map_err(|e| match e {
            swp_machine::MachineError::UnknownClass(c) => ScheduleError::UnknownClass(c),
            swp_machine::MachineError::NoUnits(n) => ScheduleError::BadMachine(n),
            swp_machine::MachineError::BadBundle(why) => ScheduleError::BadMachine(why),
        })?;
        let t_lb = t_dep.max(t_res);
        let t_max = t_lb + self.config.max_t_above_lb;
        let mut attempts = Vec::new();
        // Carried refutations: the caller vouches for `t_lb..start`, so
        // the sweep begins there and those periods count as refuted.
        let start = if self.config.warm_sweep {
            warm.start_at
                .map_or(t_lb, |s| s.clamp(t_lb, t_max.saturating_add(1)))
        } else {
            t_lb
        };
        warm.reuse.periods_skipped += u64::from(start - t_lb);
        // Periods in `t_lb..first_unrefuted` are proven infeasible.
        let mut first_unrefuted = start;
        let mut budget_hit = self.config.faults.expire_before_search;

        if !budget_hit {
            for period in start..=t_max {
                match budget.check() {
                    Ok(()) => {}
                    Err(Exhaustion::Cancelled) => return Err(ScheduleError::Cancelled),
                    Err(_) => {
                        budget_hit = true;
                        break;
                    }
                }
                match self.try_period(ddg, period, budget, &mut attempts, warm)? {
                    PeriodResult::Schedule(schedule) => {
                        let optimality = if first_unrefuted == period {
                            Optimality::Proven
                        } else {
                            Optimality::BudgetExhausted {
                                smallest_refuted: first_unrefuted,
                            }
                        };
                        warm.ims_hint = Some(schedule.clone());
                        return Ok(ScheduleResult {
                            schedule,
                            t_dep,
                            t_res,
                            attempts,
                            optimality,
                        });
                    }
                    PeriodResult::Refuted => {
                        if first_unrefuted == period {
                            first_unrefuted = period + 1;
                        }
                    }
                    PeriodResult::Undecided => {}
                    PeriodResult::BudgetExhausted => {
                        budget_hit = true;
                        break;
                    }
                }
            }
        }

        if let Err(Exhaustion::Cancelled) = budget.check() {
            return Err(ScheduleError::Cancelled);
        }
        if budget_hit {
            // Graceful degradation: best-effort heuristic schedule under a
            // fresh tick-capped grace allowance (the dead wall-clock
            // deadline must not also kill the fallback).
            return self.degrade(ddg, t_dep, t_res, t_lb, t_max, first_unrefuted, attempts);
        }
        Err(ScheduleError::NotFound {
            t_lb,
            t_max,
            attempts,
        })
    }

    /// The post-exhaustion fallback: IMS under [`GRACE_TICKS`], verified
    /// by the independent checker, tagged budget-exhausted.
    fn degrade(
        &self,
        ddg: &Ddg,
        t_dep: u32,
        t_res: u32,
        t_lb: u32,
        t_max: u32,
        first_unrefuted: u32,
        mut attempts: Vec<PeriodAttempt>,
    ) -> Result<ScheduleResult, ScheduleError> {
        let started = std::time::Instant::now();
        let grace = Budget::with_tick_limit(GRACE_TICKS);
        let ims = self.ims();
        match ims.schedule_with(ddg, &grace) {
            Ok(res) => {
                let period = res.schedule.initiation_interval();
                match self.verify(&res.schedule, ddg, SolvedBy::Heuristic) {
                    Ok(()) => {
                        attempts.push(PeriodAttempt {
                            period,
                            outcome: PeriodOutcome::Feasible(SolvedBy::Heuristic),
                            nodes: 0,
                            lp_iterations: 0,
                            elapsed: started.elapsed(),
                            num_vars: 0,
                            num_constrs: 0,
                            race: None,
                        });
                        Ok(ScheduleResult {
                            schedule: res.schedule,
                            t_dep,
                            t_res,
                            attempts,
                            optimality: Optimality::BudgetExhausted {
                                smallest_refuted: first_unrefuted,
                            },
                        })
                    }
                    Err(error) => Err(ScheduleError::VerificationFailed {
                        period,
                        engine: SolvedBy::Heuristic,
                        error,
                    }),
                }
            }
            Err(HeuristicError::Cancelled) => Err(ScheduleError::Cancelled),
            Err(_) => Err(ScheduleError::NotFound {
                t_lb,
                t_max,
                attempts,
            }),
        }
    }

    /// Independent re-check of a candidate schedule (with fault hooks).
    /// Fetches the conflict oracle itself; period-loop callers go
    /// through [`Self::verify_with`] with the hoisted oracle instead.
    fn verify(
        &self,
        schedule: &PipelinedSchedule,
        ddg: &Ddg,
        engine: SolvedBy,
    ) -> Result<(), ValidationError> {
        let oracle = self
            .use_automaton()
            .then(|| HazardAutomaton::for_machine(&self.machine, schedule.initiation_interval()));
        self.verify_with(schedule, ddg, engine, oracle.as_deref())
    }

    /// Independent re-check against a caller-provided conflict oracle
    /// (hoisted once per `(machine, T)` by the sweep loop; `None` means
    /// exact-scan checking).
    fn verify_with(
        &self,
        schedule: &PipelinedSchedule,
        ddg: &Ddg,
        engine: SolvedBy,
        oracle: Option<&HazardAutomaton>,
    ) -> Result<(), ValidationError> {
        let injected = match engine {
            SolvedBy::Ilp => self.config.faults.reject_ilp_schedule,
            SolvedBy::Cp => false,
            SolvedBy::Heuristic => self.config.faults.reject_heuristic_schedule,
        };
        if injected {
            // A synthetic, clearly-impossible violation.
            return Err(ValidationError::WrongArity {
                schedule: usize::MAX,
                ddg: ddg.num_nodes(),
            });
        }
        // Checker fast path: automaton verdicts with exact-scan fallback
        // on any query it cannot answer; otherwise the configured cell
        // layout decides between word-parallel and per-cell scans.
        schedule.validate_layout(
            ddg,
            &self.machine,
            oracle.map(|o| o as &dyn swp_machine::ConflictOracle),
            self.config.data_layout,
        )?;
        if let Some(limit) = self.config.max_live {
            schedule.validate_pressure(ddg, limit)?;
        }
        Ok(())
    }

    /// Attempts exactly one period under a per-period slice of `budget`.
    fn try_period(
        &self,
        ddg: &Ddg,
        period: u32,
        budget: &Budget,
        attempts: &mut Vec<PeriodAttempt>,
        warm: &mut WarmState,
    ) -> Result<PeriodResult, ScheduleError> {
        let started = std::time::Instant::now();
        let period_budget = budget.restrict(self.config.time_limit_per_t, None);
        let ims = self.ims();
        // Hoisted conflict oracle: one registry fetch per (machine, T)
        // for this whole period — incumbent probe verification, node
        // pruner, and schedule verification all share it.
        let oracle = self
            .use_automaton()
            .then(|| HazardAutomaton::for_machine(&self.machine, period));

        // The heuristic produces *mapped* schedules; under CapacityOnly
        // the point is to study the capacity-only ILP, so skip it there.
        if self.config.heuristic_incumbent
            && self.config.mapping == MappingMode::UnifiedColoring
            && !self.config.faults.fail_heuristic_incumbent
        {
            let hint = if self.config.warm_sweep {
                warm.ims_hint.as_ref()
            } else {
                None
            };
            match ims.schedule_at_with_hint(ddg, period, &period_budget, hint) {
                Ok(Some(schedule)) => {
                    if hint == Some(&schedule) {
                        warm.reuse.ims_hint_hits += 1;
                    }
                    if self
                        .verify_with(&schedule, ddg, SolvedBy::Heuristic, oracle.as_deref())
                        .is_ok()
                    {
                        attempts.push(PeriodAttempt {
                            period,
                            outcome: PeriodOutcome::Feasible(SolvedBy::Heuristic),
                            nodes: 0,
                            lp_iterations: 0,
                            elapsed: started.elapsed(),
                            num_vars: 0,
                            num_constrs: 0,
                            race: None,
                        });
                        return Ok(PeriodResult::Schedule(schedule));
                    }
                    // Checker rejected the heuristic schedule: fall through
                    // to the other engine (the ILP) at this same period.
                }
                Ok(None) => {}
                Err(HeuristicError::Cancelled) => return Err(ScheduleError::Cancelled),
                Err(_) => {
                    // Per-period (or global) budget died inside the probe.
                    attempts.push(PeriodAttempt {
                        period,
                        outcome: PeriodOutcome::TimedOut,
                        nodes: 0,
                        lp_iterations: 0,
                        elapsed: started.elapsed(),
                        num_vars: 0,
                        num_constrs: 0,
                        race: None,
                    });
                    return Ok(if budget.check().is_err() {
                        PeriodResult::BudgetExhausted
                    } else {
                        PeriodResult::Undecided
                    });
                }
            }
        }

        if self.config.faults.expire_before_ilp {
            attempts.push(PeriodAttempt {
                period,
                outcome: PeriodOutcome::TimedOut,
                nodes: 0,
                lp_iterations: 0,
                elapsed: started.elapsed(),
                num_vars: 0,
                num_constrs: 0,
                race: None,
            });
            return Ok(PeriodResult::BudgetExhausted);
        }

        // A strictly cold solve never threads the warm state into the
        // engines: no basis carry-over, no no-good replay, even within
        // one sweep.
        let hot = self.config.warm_sweep;
        match self.effective_engine() {
            Engine::Ilp => {
                let verdict = self.run_ilp_exact(
                    ddg,
                    period,
                    &period_budget,
                    oracle.as_ref(),
                    hot.then_some(&mut *warm),
                );
                self.settle_exact(
                    ddg,
                    period,
                    verdict,
                    SolvedBy::Ilp,
                    None,
                    budget,
                    &period_budget,
                    attempts,
                    started,
                    oracle.as_deref(),
                )
            }
            Engine::Cp => {
                // The CP backend cannot color classes wider than its
                // 64-bit unit domains; on such instances fall back to the
                // ILP for this period instead of reporting engine failure.
                let (verdict, engine) =
                    match self.run_cp_exact(ddg, period, &period_budget, hot.then_some(&mut *warm))
                    {
                        ExactVerdict::Failed { .. } => (
                            self.run_ilp_exact(
                                ddg,
                                period,
                                &period_budget,
                                oracle.as_ref(),
                                hot.then_some(&mut *warm),
                            ),
                            SolvedBy::Ilp,
                        ),
                        v => (v, SolvedBy::Cp),
                    };
                self.settle_exact(
                    ddg,
                    period,
                    verdict,
                    engine,
                    None,
                    budget,
                    &period_budget,
                    attempts,
                    started,
                    oracle.as_deref(),
                )
            }
            Engine::Portfolio => {
                let (verdict, engine, race) =
                    self.race_period(ddg, period, budget, &period_budget, oracle.as_ref());
                self.settle_exact(
                    ddg,
                    period,
                    verdict,
                    engine,
                    Some(race),
                    budget,
                    &period_budget,
                    attempts,
                    started,
                    oracle.as_deref(),
                )
            }
        }
    }

    /// The engine that will actually settle periods: the CP backend
    /// implements the unified-coloring feasibility problem only, so any
    /// other mapping mode or objective forces the ILP regardless of
    /// [`SchedulerConfig::engine`].
    fn effective_engine(&self) -> Engine {
        if self.config.mapping != MappingMode::UnifiedColoring
            || self.config.objective != Objective::Feasible
        {
            Engine::Ilp
        } else {
            self.config.engine
        }
    }

    /// Runs the unified ILP at `period` under `period_budget` and
    /// normalizes the outcome. Pushes no attempt-log entry — that is
    /// [`Self::settle_exact`]'s job, so race losers never pollute the log.
    fn run_ilp_exact(
        &self,
        ddg: &Ddg,
        period: u32,
        period_budget: &Budget,
        oracle: Option<&Arc<HazardAutomaton>>,
        warm: Option<&mut WarmState>,
    ) -> ExactVerdict {
        let f = match formulation::build_with(
            ddg,
            &self.machine,
            period,
            FormulationOptions {
                mapping: self.config.mapping,
                objective: self.config.objective,
                symmetry_breaking: self.config.symmetry_breaking,
                packing_bound: self.config.packing_bound,
                max_live: self.config.max_live,
                ..FormulationOptions::standard()
            },
            period_budget,
        ) {
            Ok(f) => f,
            Err(ScheduleError::PeriodInfeasible { .. }) => {
                return ExactVerdict::Refuted {
                    at_build: true,
                    num_vars: 0,
                    num_constrs: 0,
                }
            }
            Err(ScheduleError::Cancelled) => return ExactVerdict::Cancelled,
            Err(e) => return ExactVerdict::Error(e),
        };
        let mut warm = warm;
        let mut limits = SolveLimits {
            time_limit: self.config.time_limit_per_t,
            budget: period_budget.clone(),
            // Both pivot layouts take identical pivot sequences (see
            // swp-milp's simplex docs), so this keeps the whole solve
            // decision-identical across `data_layout` while moving the
            // LP inner loop onto the matching layout.
            pivot_layout: match self.config.data_layout {
                DataLayout::Legacy => swp_milp::PivotLayout::Dense,
                DataLayout::Flat => swp_milp::PivotLayout::SparseRow,
            },
            ..SolveLimits::default()
        };
        if self.config.objective == Objective::Feasible {
            limits.stop_at_first_incumbent = true;
        }
        if self.use_automaton() {
            limits.node_pruner = Some(self.build_node_pruner(ddg, &f, oracle));
        }
        if let Some(w) = warm.as_deref_mut() {
            if let Some(names) = &w.basis_names {
                let hint = f.model.basis_from_names(names);
                if !hint.is_empty() {
                    w.reuse.basis_hits += 1;
                    limits.warm_basis = Some(hint);
                }
            }
        }
        let (num_vars, num_constrs) = (f.model.num_vars(), f.model.num_constrs());
        let (solved, basis) = if self.config.faults.fail_ilp {
            (Err(SolveError::Numerical("injected fault".into())), None)
        } else if warm.is_some() {
            f.model.solve_with_basis(&limits)
        } else {
            (f.model.solve_with(&limits), None)
        };
        if let Some(w) = warm.as_deref_mut() {
            // The basis is exported even off the infeasible path: refuted
            // periods are exactly where the `T+1` crash start pays.
            if let Some(b) = basis.filter(|b| !b.is_empty()) {
                w.basis_names = Some(f.model.basis_to_names(&b));
                w.reuse.basis_exports += 1;
            }
        }
        match solved {
            Ok(sol) => {
                let stats = *sol.stats();
                let (starts, units) = f.extract(&sol);
                ExactVerdict::Feasible {
                    starts,
                    units,
                    nodes: stats.nodes,
                    lp_iterations: stats.lp_iterations,
                    num_vars,
                    num_constrs,
                }
            }
            Err(SolveError::Infeasible) => ExactVerdict::Refuted {
                at_build: false,
                num_vars,
                num_constrs,
            },
            Err(SolveError::LimitReached(_)) => ExactVerdict::Limit {
                num_vars,
                num_constrs,
            },
            Err(SolveError::Cancelled) => ExactVerdict::Cancelled,
            Err(SolveError::Numerical(_)) => ExactVerdict::Failed {
                num_vars,
                num_constrs,
            },
            Err(e) => ExactVerdict::Error(ScheduleError::Solver(e)),
        }
    }

    /// Runs the CP backend at `period` under `period_budget` and
    /// normalizes the outcome onto the same verdict type as the ILP.
    fn run_cp_exact(
        &self,
        ddg: &Ddg,
        period: u32,
        period_budget: &Budget,
        warm: Option<&mut WarmState>,
    ) -> ExactVerdict {
        let opts = CpOptions {
            symmetry_breaking: self.config.symmetry_breaking,
            packing_bound: self.config.packing_bound,
            max_live: self.config.max_live,
        };
        // Race arms run with a throwaway store: which clauses a loser
        // learned depends on wall-clock interleaving, and persisting them
        // would leak race nondeterminism into the next warm solve.
        let mut scratch = swp_cpsat::NoGoodStore::default();
        let (store, reuse) = match warm {
            Some(w) => (&mut w.nogoods, Some(&mut w.reuse)),
            None => (&mut scratch, None),
        };
        let solved =
            swp_cpsat::solve_at_warm(ddg, &self.machine, period, opts, period_budget, store);
        if let (Some(reuse), Ok((_, stats))) = (reuse, &solved) {
            reuse.nogood_replays += stats.nogoods_replayed;
        }
        match solved {
            Ok((CpOutcome::Feasible { starts, units }, stats)) => ExactVerdict::Feasible {
                starts,
                units,
                nodes: stats.nodes,
                lp_iterations: 0,
                num_vars: 0,
                num_constrs: 0,
            },
            Ok((CpOutcome::Infeasible, _)) => ExactVerdict::Refuted {
                at_build: false,
                num_vars: 0,
                num_constrs: 0,
            },
            Err(CpError::Exhausted(Exhaustion::Cancelled)) => ExactVerdict::Cancelled,
            Err(CpError::Exhausted(_)) => ExactVerdict::Limit {
                num_vars: 0,
                num_constrs: 0,
            },
            Err(CpError::UnknownClass(c)) => ExactVerdict::Error(ScheduleError::UnknownClass(c)),
            Err(CpError::TooManyUnits { .. }) => ExactVerdict::Failed {
                num_vars: 0,
                num_constrs: 0,
            },
        }
    }

    /// Races the ILP and the CP backend on isolated slices of
    /// `period_budget`. The first engine with a proven answer (feasible
    /// schedule or exact refutation) wins and cancels the other via its
    /// private cancel token. Race ticks are spent on the isolated slices
    /// only, never the shared pool — a loser's progress depends on
    /// wall-clock interleaving, so letting it drain the caller's tick
    /// budget would destroy the sweep's tick-level determinism.
    fn race_period(
        &self,
        ddg: &Ddg,
        period: u32,
        budget: &Budget,
        period_budget: &Budget,
        oracle: Option<&Arc<HazardAutomaton>>,
    ) -> (ExactVerdict, SolvedBy, RaceReport) {
        let (ilp_budget, ilp_token) = period_budget.fork_racer();
        let (cp_budget, cp_token) = period_budget.fork_racer();
        let (tx, rx) = mpsc::channel();
        let mut ilp_done: Option<(ExactVerdict, u64)> = None;
        let mut cp_done: Option<(ExactVerdict, u64)> = None;
        let mut winner: Option<RaceEngine> = None;
        std::thread::scope(|scope| {
            // CP is spawned first deliberately: on a single-core host the
            // run queue is roughly FIFO, and the CP arm — typically
            // microseconds on this corpus — finishing before the ILP arm
            // is even scheduled turns the race into "CP time plus two
            // context switches" instead of an OS scheduling quantum.
            // With more cores the order is irrelevant.
            let cp_tx = tx.clone();
            let cp_budget = &cp_budget;
            scope.spawn(move || {
                let v = self.run_cp_exact(ddg, period, cp_budget, None);
                let _ = cp_tx.send((RaceEngine::Cp, v, cp_budget.ticks_used()));
            });
            let ilp_budget = &ilp_budget;
            scope.spawn(move || {
                let v = self.run_ilp_exact(ddg, period, ilp_budget, oracle, None);
                let _ = tx.send((RaceEngine::Ilp, v, ilp_budget.ticks_used()));
            });
            let mut received = 0;
            while received < 2 {
                match rx.recv_timeout(Duration::from_millis(2)) {
                    Ok((engine, verdict, ticks)) => {
                        received += 1;
                        let decisive = matches!(
                            verdict,
                            ExactVerdict::Feasible { .. } | ExactVerdict::Refuted { .. }
                        );
                        if decisive && winner.is_none() {
                            winner = Some(engine);
                            match engine {
                                RaceEngine::Ilp => cp_token.cancel(),
                                RaceEngine::Cp => ilp_token.cancel(),
                            }
                        }
                        match engine {
                            RaceEngine::Ilp => ilp_done = Some((verdict, ticks)),
                            RaceEngine::Cp => cp_done = Some((verdict, ticks)),
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // Forward the caller's cancellation into both
                        // racers. Deadline death needs no forwarding: the
                        // forked slices carry the parent deadline.
                        if matches!(budget.check(), Err(Exhaustion::Cancelled)) {
                            ilp_token.cancel();
                            cp_token.cancel();
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        });
        let (ilp_verdict, ilp_ticks) = ilp_done.unwrap_or((ExactVerdict::Cancelled, 0));
        let (cp_verdict, cp_ticks) = cp_done.unwrap_or((ExactVerdict::Cancelled, 0));
        let loser_cancelled = match winner {
            Some(RaceEngine::Ilp) => matches!(cp_verdict, ExactVerdict::Cancelled),
            Some(RaceEngine::Cp) => matches!(ilp_verdict, ExactVerdict::Cancelled),
            None => false,
        };
        let report = RaceReport {
            winner,
            loser_cancelled,
            ilp_ticks,
            cp_ticks,
        };
        match winner {
            Some(RaceEngine::Ilp) => (ilp_verdict, SolvedBy::Ilp, report),
            Some(RaceEngine::Cp) => (cp_verdict, SolvedBy::Cp, report),
            None => {
                // Neither engine proved anything. Hard errors propagate
                // (the ILP's takes precedence); a cancelled racer with no
                // winner means either the caller's token fired (surface
                // it) or a forwarded budget death (undecided timeout);
                // two failures stay a failure; otherwise the slice limits
                // tripped.
                let verdict = match (ilp_verdict, cp_verdict) {
                    (v @ ExactVerdict::Error(_), _) => v,
                    (_, v @ ExactVerdict::Error(_)) => v,
                    (ExactVerdict::Cancelled, _) | (_, ExactVerdict::Cancelled) => {
                        if matches!(budget.check(), Err(Exhaustion::Cancelled)) {
                            ExactVerdict::Cancelled
                        } else {
                            ExactVerdict::Limit {
                                num_vars: 0,
                                num_constrs: 0,
                            }
                        }
                    }
                    (ExactVerdict::Failed { .. }, v @ ExactVerdict::Failed { .. }) => v,
                    (v @ ExactVerdict::Limit { .. }, _) | (_, v @ ExactVerdict::Limit { .. }) => v,
                    (v, _) => v,
                };
                (verdict, SolvedBy::Ilp, report)
            }
        }
    }

    /// Converts an exact-engine verdict into an attempt-log entry and a
    /// [`PeriodResult`], running the shared verification and fallback
    /// paths. All three engine modes settle through here, so degradation
    /// behaviour is identical regardless of which engine answered.
    #[allow(clippy::too_many_arguments)]
    fn settle_exact(
        &self,
        ddg: &Ddg,
        period: u32,
        verdict: ExactVerdict,
        engine: SolvedBy,
        race: Option<RaceReport>,
        budget: &Budget,
        period_budget: &Budget,
        attempts: &mut Vec<PeriodAttempt>,
        started: std::time::Instant,
        oracle: Option<&HazardAutomaton>,
    ) -> Result<PeriodResult, ScheduleError> {
        match verdict {
            ExactVerdict::Feasible {
                starts,
                units,
                nodes,
                lp_iterations,
                num_vars,
                num_constrs,
            } => {
                let assignment = self.complete_assignment(ddg, period, &starts, &units)?;
                let schedule = PipelinedSchedule::new(period, starts, assignment);
                match self.verify_with(&schedule, ddg, engine, oracle) {
                    Ok(()) => {
                        attempts.push(PeriodAttempt {
                            period,
                            outcome: PeriodOutcome::Feasible(engine),
                            nodes,
                            lp_iterations,
                            elapsed: started.elapsed(),
                            num_vars,
                            num_constrs,
                            race,
                        });
                        Ok(PeriodResult::Schedule(schedule))
                    }
                    Err(error) => {
                        // Checker rejected the exact schedule: fall back
                        // to the heuristic at this same period.
                        match self.heuristic_fallback(
                            ddg,
                            period,
                            period_budget,
                            attempts,
                            started,
                            oracle,
                        ) {
                            Some(result) => result,
                            None => Err(ScheduleError::VerificationFailed {
                                period,
                                engine,
                                error,
                            }),
                        }
                    }
                }
            }
            ExactVerdict::Refuted {
                at_build,
                num_vars,
                num_constrs,
            } => {
                attempts.push(PeriodAttempt {
                    period,
                    outcome: if at_build {
                        PeriodOutcome::RejectedAtBuild
                    } else {
                        PeriodOutcome::Infeasible
                    },
                    nodes: 0,
                    lp_iterations: 0,
                    elapsed: started.elapsed(),
                    num_vars,
                    num_constrs,
                    race,
                });
                Ok(PeriodResult::Refuted)
            }
            ExactVerdict::Limit {
                num_vars,
                num_constrs,
            } => {
                attempts.push(PeriodAttempt {
                    period,
                    outcome: PeriodOutcome::TimedOut,
                    nodes: 0,
                    lp_iterations: 0,
                    elapsed: started.elapsed(),
                    num_vars,
                    num_constrs,
                    race,
                });
                Ok(if budget.check().is_err() {
                    PeriodResult::BudgetExhausted
                } else {
                    PeriodResult::Undecided
                })
            }
            ExactVerdict::Cancelled => Err(ScheduleError::Cancelled),
            ExactVerdict::Failed {
                num_vars,
                num_constrs,
            } => {
                attempts.push(PeriodAttempt {
                    period,
                    outcome: PeriodOutcome::EngineFailed,
                    nodes: 0,
                    lp_iterations: 0,
                    elapsed: started.elapsed(),
                    num_vars,
                    num_constrs,
                    race,
                });
                // The exact engine lost traction: degrade to the heuristic
                // at this period. Its success is a certificate; its failure
                // proves nothing, so the period stays undecided.
                match self.heuristic_fallback(ddg, period, period_budget, attempts, started, oracle)
                {
                    Some(result) => result,
                    None => Ok(PeriodResult::Undecided),
                }
            }
            ExactVerdict::Error(e) => Err(e),
        }
    }

    /// Builds a branch-and-bound [`NodePruner`] from the hazard
    /// automaton's collision matrix.
    ///
    /// A node (subproblem box) is pruned only when its variable bounds
    /// already *force* a structural conflict: two same-class ops whose
    /// issue offsets are fixed (exactly one step `t` with `hi[a_{t,i}] >
    /// 0.5` — the `Σ_t a_{t,i} = 1` row then forces that step) and whose
    /// unit is known (both colors fixed to the same value, or the class
    /// has a single unit), at an offset distance the collision matrix
    /// marks forbidden. Every integer point in such a box violates a
    /// capacity or overlap row, so discarding the box is sound; the LP
    /// relaxation is simply skipped.
    fn build_node_pruner(
        &self,
        ddg: &Ddg,
        f: &formulation::Formulation,
        oracle: Option<&Arc<HazardAutomaton>>,
    ) -> NodePruner {
        struct OpInfo {
            class: OpClass,
            single_unit: bool,
            a_row: Vec<usize>,
            color: Option<usize>,
        }
        let ops: Vec<OpInfo> = ddg
            .nodes()
            .map(|(id, node)| OpInfo {
                class: node.class,
                single_unit: self
                    .machine
                    .fu_type(node.class)
                    .map(|fu| fu.count == 1)
                    .unwrap_or(false),
                a_row: f.a[id.index()].iter().map(|v| v.index()).collect(),
                color: f.color[id.index()].map(|v| v.index()),
            })
            .collect();
        // Same-class pairs, precomputed so the per-node closure is a
        // flat scan.
        let pairs: Vec<(usize, usize)> = (0..ops.len())
            .flat_map(|i| ((i + 1)..ops.len()).map(move |j| (i, j)))
            .filter(|&(i, j)| ops[i].class == ops[j].class)
            .collect();
        // The period loop hoists the registry fetch; direct callers (race
        // arms get the caller's Arc too) fall back to fetching here.
        let automaton = oracle
            .cloned()
            .unwrap_or_else(|| HazardAutomaton::for_machine(&self.machine, f.period));
        let period = f.period;
        NodePruner::new(move |lo: &[f64], hi: &[f64]| {
            let fixed_offset = |op: &OpInfo| -> Option<u32> {
                let mut found = None;
                for (t, &v) in op.a_row.iter().enumerate() {
                    if hi[v] > 0.5 {
                        if found.is_some() {
                            return None;
                        }
                        found = Some(t as u32);
                    }
                }
                found
            };
            let fixed_color = |op: &OpInfo| -> Option<i64> {
                let v = op.color?;
                let (l, h) = (lo[v].ceil() as i64, hi[v].floor() as i64);
                (l == h).then_some(l)
            };
            for &(i, j) in &pairs {
                let (a, b) = (&ops[i], &ops[j]);
                let same_unit = a.single_unit
                    || matches!((fixed_color(a), fixed_color(b)), (Some(x), Some(y)) if x == y);
                if !same_unit {
                    continue;
                }
                let (Some(ta), Some(tb)) = (fixed_offset(a), fixed_offset(b)) else {
                    continue;
                };
                let delta = (ta + period - tb) % period;
                if automaton.matrix().collides(a.class, b.class, delta) == Some(true) {
                    return true;
                }
            }
            false
        })
    }

    /// Runs IMS at `period` as the fallback engine and verifies the
    /// result. `None` means no certified fallback schedule exists.
    #[allow(clippy::type_complexity)]
    fn heuristic_fallback(
        &self,
        ddg: &Ddg,
        period: u32,
        period_budget: &Budget,
        attempts: &mut Vec<PeriodAttempt>,
        started: std::time::Instant,
        oracle: Option<&HazardAutomaton>,
    ) -> Option<Result<PeriodResult, ScheduleError>> {
        let ims = self.ims();
        match ims.schedule_at_with(ddg, period, period_budget) {
            Ok(Some(schedule)) => {
                if self
                    .verify_with(&schedule, ddg, SolvedBy::Heuristic, oracle)
                    .is_ok()
                {
                    attempts.push(PeriodAttempt {
                        period,
                        outcome: PeriodOutcome::Feasible(SolvedBy::Heuristic),
                        nodes: 0,
                        lp_iterations: 0,
                        elapsed: started.elapsed(),
                        num_vars: 0,
                        num_constrs: 0,
                        race: None,
                    });
                    Some(Ok(PeriodResult::Schedule(schedule)))
                } else {
                    None
                }
            }
            Ok(None) => None,
            Err(HeuristicError::Cancelled) => Some(Err(ScheduleError::Cancelled)),
            Err(_) => None,
        }
    }

    /// Fills unit assignments: colored nodes take their color; classes
    /// without coloring variables are mapped first-fit per class (always
    /// possible for clean or single-unit classes given capacity holds;
    /// under [`MappingMode::CapacityOnly`] first-fit may fail, and the
    /// schedule is returned unmapped — exactly the gap the paper closes).
    fn complete_assignment(
        &self,
        ddg: &Ddg,
        period: u32,
        starts: &[u32],
        colors: &[Option<u32>],
    ) -> Result<Vec<Option<u32>>, ScheduleError> {
        use std::collections::HashMap;
        let mut assignment: Vec<Option<u32>> = colors.to_vec();
        // usage: (class, fu, stage, residue) occupied?
        let mut usage: HashMap<(usize, u32, usize, u32), ()> = HashMap::new();
        // Commit colored nodes first.
        for (id, node) in ddg.nodes() {
            if let Some(fu) = assignment[id.index()] {
                let rt = &self
                    .machine
                    .fu_type(node.class)
                    .map_err(|_| ScheduleError::UnknownClass(node.class))?
                    .reservation;
                for s in 0..rt.stages() {
                    for l in rt.stage_offsets(s) {
                        let residue = (starts[id.index()] + l as u32) % period;
                        usage.insert((node.class.index(), fu, s, residue), ());
                    }
                }
            }
        }
        // First-fit the rest.
        for (id, node) in ddg.nodes() {
            if assignment[id.index()].is_some() {
                continue;
            }
            let fu_type = self
                .machine
                .fu_type(node.class)
                .map_err(|_| ScheduleError::UnknownClass(node.class))?;
            let rt = &fu_type.reservation;
            let mut chosen = None;
            'fu: for fu in 0..fu_type.count {
                for s in 0..rt.stages() {
                    for l in rt.stage_offsets(s) {
                        let residue = (starts[id.index()] + l as u32) % period;
                        if usage.contains_key(&(node.class.index(), fu, s, residue)) {
                            continue 'fu;
                        }
                    }
                }
                chosen = Some(fu);
                break;
            }
            if let Some(fu) = chosen {
                for s in 0..rt.stages() {
                    for l in rt.stage_offsets(s) {
                        let residue = (starts[id.index()] + l as u32) % period;
                        usage.insert((node.class.index(), fu, s, residue), ());
                    }
                }
                assignment[id.index()] = Some(fu);
            } else if self.config.mapping == MappingMode::UnifiedColoring {
                // Should be impossible: coloring covered every class that
                // could fail first-fit.
                return Err(ScheduleError::MappingGap { node: id, period });
            }
            // CapacityOnly: leave unmapped; caller sees is_mapped() == false.
        }
        Ok(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ddg::OpClass;
    use swp_milp::CancelToken;

    /// A small FP loop with a recurrence on the hazard machine.
    fn fp_loop() -> Ddg {
        let mut g = Ddg::new();
        let ld = g.add_node("load", OpClass::new(2), 3);
        let m1 = g.add_node("fmul", OpClass::new(1), 2);
        let a1 = g.add_node("fadd", OpClass::new(1), 2);
        let st = g.add_node("store", OpClass::new(2), 3);
        g.add_edge(ld, m1, 0).unwrap();
        g.add_edge(m1, a1, 0).unwrap();
        g.add_edge(a1, st, 0).unwrap();
        g.add_edge(a1, a1, 1).unwrap(); // accumulator: T_dep = 2
        g
    }

    #[test]
    fn schedules_at_lower_bound_on_hazard_machine() {
        let machine = Machine::example_pldi95();
        let s = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
            .schedule(&fp_loop())
            .expect("schedulable");
        assert_eq!(s.t_dep, 2);
        assert!(
            s.is_rate_optimal(),
            "expected T = T_lb, got slack {}",
            s.slack_above_lb()
        );
        assert!(s.is_proven_optimal());
        assert!(s.schedule.is_mapped());
        assert_eq!(s.schedule.validate(&fp_loop(), &machine), Ok(()));
    }

    #[test]
    fn capacity_only_schedule_validates_capacity() {
        let machine = Machine::example_pldi95();
        let cfg = SchedulerConfig {
            mapping: MappingMode::CapacityOnly,
            ..Default::default()
        };
        let s = RateOptimalScheduler::new(machine.clone(), cfg)
            .schedule(&fp_loop())
            .expect("schedulable");
        assert_eq!(s.schedule.validate(&fp_loop(), &machine), Ok(()));
    }

    #[test]
    fn reports_bounds_and_attempts() {
        let machine = Machine::example_pldi95();
        let s = RateOptimalScheduler::new(machine, SchedulerConfig::default())
            .schedule(&fp_loop())
            .expect("schedulable");
        assert!(!s.attempts.is_empty());
        assert!(matches!(
            s.attempts.last().map(|a| a.outcome.clone()),
            Some(PeriodOutcome::Feasible(_))
        ));
        assert_eq!(s.t_lb(), s.t_dep.max(s.t_res));
    }

    #[test]
    fn solver_stats_aggregate_the_attempt_log() {
        let machine = Machine::example_pldi95();
        let s = RateOptimalScheduler::new(machine, SchedulerConfig::default())
            .schedule(&fp_loop())
            .expect("schedulable");
        let stats = s.solver_stats();
        assert_eq!(stats.periods_attempted, s.attempts.len() as u32);
        assert_eq!(stats.bb_nodes, s.total_nodes());
        assert_eq!(stats.lp_iterations, s.total_lp_iterations());
        assert_eq!(stats.ilp_feasible + stats.heuristic_feasible, 1);
        assert!(!stats.any_timeout());
        // The final feasible attempt names the producing engine.
        match s.attempts.last().map(|a| a.outcome.clone()) {
            Some(PeriodOutcome::Feasible(e)) => assert_eq!(s.solved_by(), e),
            other => panic!("last attempt not feasible: {other:?}"),
        }
    }

    #[test]
    fn vliw_bundle_agrees_across_exact_engines() {
        // example_vliw: issue width 2, "mem" slot (class 2) capped at 1
        // per cycle. fp_loop has two mem ops, so any period must keep
        // them at distinct residues; both exact engines must agree on
        // the proven-optimal T and their witnesses must validate.
        let machine = Machine::example_vliw();
        let g = fp_loop();
        let mut proven = Vec::new();
        for engine in [Engine::Ilp, Engine::Cp] {
            let cfg = SchedulerConfig {
                engine,
                ..Default::default()
            };
            let s = RateOptimalScheduler::new(machine.clone(), cfg)
                .schedule(&g)
                .expect("schedulable on the VLIW machine");
            assert!(s.is_proven_optimal(), "{engine:?} should prove optimality");
            assert_eq!(s.schedule.validate(&g, &machine), Ok(()));
            proven.push(s.schedule.initiation_interval());
        }
        assert_eq!(proven[0], proven[1], "ILP and CP disagree on VLIW T");
    }

    #[test]
    fn pressure_cap_agrees_across_exact_engines() {
        // a (latency 3, FP) -> b: uncapped the chain schedules at T=1,
        // where the value of `a` spans 3 periods (pressure 3). A cap of
        // 1 forces T up to 3 with b exactly one period after a. Both
        // exact engines must land on the same proven T and emit
        // cap-compliant witnesses.
        let machine = Machine::example_clean();
        let mut g = Ddg::new();
        let a = g.add_node("a", OpClass::new(1), 3);
        let b = g.add_node("b", OpClass::new(1), 1);
        g.add_edge(a, b, 0).unwrap();
        let uncapped = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
            .schedule(&g)
            .expect("uncapped");
        assert!(uncapped.schedule.max_live(&g) > 1);
        let mut proven = Vec::new();
        for engine in [Engine::Ilp, Engine::Cp] {
            let cfg = SchedulerConfig {
                engine,
                max_live: Some(1),
                ..Default::default()
            };
            let s = RateOptimalScheduler::new(machine.clone(), cfg)
                .schedule(&g)
                .expect("schedulable under the cap");
            assert!(s.is_proven_optimal());
            assert_eq!(s.schedule.validate_pressure(&g, 1), Ok(()));
            assert!(
                s.schedule.initiation_interval() > uncapped.schedule.initiation_interval(),
                "the cap must cost some period"
            );
            proven.push(s.schedule.initiation_interval());
        }
        assert_eq!(proven[0], proven[1], "ILP and CP disagree under the cap");
    }

    #[test]
    fn zero_distance_cycle_is_an_error() {
        let mut g = Ddg::new();
        let a = g.add_node("a", OpClass::new(1), 2);
        let b = g.add_node("b", OpClass::new(1), 2);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 0).unwrap();
        let err = RateOptimalScheduler::new(Machine::example_pldi95(), SchedulerConfig::default())
            .schedule(&g)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::NoFinitePeriod));
    }

    #[test]
    fn min_start_times_objective_compacts() {
        let machine = Machine::example_clean();
        let cfg = SchedulerConfig {
            objective: Objective::MinStartTimes,
            ..Default::default()
        };
        let s = RateOptimalScheduler::new(machine.clone(), cfg)
            .schedule(&fp_loop())
            .expect("schedulable");
        // Chain lengths: ld@0, fmul@3, fadd@5, store@7 is the compact optimum.
        assert_eq!(s.schedule.start_times(), &[0, 3, 5, 7]);
    }

    #[test]
    fn non_pipelined_machine_raises_t() {
        // 3 FP ops on 2 non-pipelined lat-2 units: T_res = ceil(6/2)... the
        // fp_loop has 2 FP ops -> ceil(4/2) = 2; with recurrence T_dep = 2.
        let machine = Machine::example_non_pipelined();
        let s = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
            .schedule(&fp_loop())
            .expect("schedulable");
        assert!(s.schedule.initiation_interval() >= 2);
        assert_eq!(s.schedule.validate(&fp_loop(), &machine), Ok(()));
    }

    #[test]
    fn exhausted_budget_still_returns_verified_schedule() {
        let machine = Machine::example_pldi95();
        let g = fp_loop();
        let s = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
            .schedule_with(&g, &Budget::with_tick_limit(0))
            .expect("degrades, not errors");
        assert!(matches!(s.optimality, Optimality::BudgetExhausted { .. }));
        assert_eq!(s.schedule.validate(&g, &machine), Ok(()));
    }

    #[test]
    fn cancellation_is_an_error_not_a_schedule() {
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let err = RateOptimalScheduler::new(Machine::example_pldi95(), SchedulerConfig::default())
            .schedule_with(&fp_loop(), &budget)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::Cancelled));
        // The token handle type is exported for callers.
        let _t: CancelToken = budget.cancel_token();
    }

    #[test]
    fn automaton_oracle_matches_scan_oracle() {
        // The automaton is a pure query accelerator: schedules, bounds,
        // and attempt outcomes must be identical to the scan oracle.
        for machine in [
            Machine::example_pldi95(),
            Machine::example_clean(),
            Machine::example_non_pipelined(),
        ] {
            let g = fp_loop();
            let scan = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
                .schedule(&g)
                .expect("scan oracle schedulable");
            let auto_cfg = SchedulerConfig {
                conflict_oracle: ConflictOracleMode::Automaton,
                ..Default::default()
            };
            let auto = RateOptimalScheduler::new(machine.clone(), auto_cfg)
                .schedule(&g)
                .expect("automaton oracle schedulable");
            assert_eq!(scan.schedule, auto.schedule, "machine {machine:?}");
            assert_eq!(scan.t_dep, auto.t_dep);
            assert_eq!(scan.t_res, auto.t_res);
            assert_eq!(
                scan.attempts.iter().map(|a| &a.outcome).collect::<Vec<_>>(),
                auto.attempts.iter().map(|a| &a.outcome).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn automaton_pruner_keeps_pure_ilp_path_equivalent() {
        // Force the ILP to do the work (no heuristic incumbent) so the
        // branch-and-bound pruner actually runs; the result must still be
        // a valid proven-optimal schedule at the same period.
        let machine = Machine::example_pldi95();
        let g = fp_loop();
        let base = SchedulerConfig {
            heuristic_incumbent: false,
            ..Default::default()
        };
        let scan = RateOptimalScheduler::new(machine.clone(), base.clone())
            .schedule(&g)
            .expect("scan oracle schedulable");
        let auto = RateOptimalScheduler::new(
            machine.clone(),
            SchedulerConfig {
                conflict_oracle: ConflictOracleMode::Automaton,
                ..base
            },
        )
        .schedule(&g)
        .expect("automaton oracle schedulable");
        assert_eq!(
            scan.schedule.initiation_interval(),
            auto.schedule.initiation_interval()
        );
        assert!(auto.is_proven_optimal());
        assert_eq!(auto.schedule.validate(&g, &machine), Ok(()));
    }

    #[test]
    fn cp_engine_agrees_with_ilp_on_proven_results() {
        // The CP backend must be decision-equivalent to the ILP: same
        // first feasible period, same proven-optimality claim, and the
        // same feasible/refuted shape of the attempt log (refutation
        // *kind* may differ: the CP backend folds build-time rejections
        // into Infeasible).
        for machine in [
            Machine::example_pldi95(),
            Machine::example_clean(),
            Machine::example_non_pipelined(),
        ] {
            let g = fp_loop();
            let base = SchedulerConfig {
                heuristic_incumbent: false,
                ..Default::default()
            };
            let ilp = RateOptimalScheduler::new(machine.clone(), base.clone())
                .schedule(&g)
                .expect("ilp schedulable");
            let cp = RateOptimalScheduler::new(
                machine.clone(),
                SchedulerConfig {
                    engine: Engine::Cp,
                    ..base
                },
            )
            .schedule(&g)
            .expect("cp schedulable");
            assert_eq!(
                ilp.schedule.initiation_interval(),
                cp.schedule.initiation_interval(),
                "machine {machine:?}"
            );
            assert!(cp.is_proven_optimal());
            assert_eq!(cp.schedule.validate(&g, &machine), Ok(()));
            assert_eq!(
                ilp.attempts
                    .iter()
                    .map(|a| matches!(a.outcome, PeriodOutcome::Feasible(_)))
                    .collect::<Vec<_>>(),
                cp.attempts
                    .iter()
                    .map(|a| matches!(a.outcome, PeriodOutcome::Feasible(_)))
                    .collect::<Vec<_>>(),
                "machine {machine:?}"
            );
            assert_eq!(cp.solved_by(), SolvedBy::Cp);
            assert_eq!(cp.solver_stats().cp_feasible, 1);
        }
    }

    #[test]
    fn cp_engine_defers_to_ilp_outside_unified_coloring() {
        // CapacityOnly has no coloring problem for the CP backend; the
        // driver must transparently use the ILP (and never race).
        let machine = Machine::example_pldi95();
        let cfg = SchedulerConfig {
            mapping: MappingMode::CapacityOnly,
            engine: Engine::Cp,
            heuristic_incumbent: false,
            ..Default::default()
        };
        let s = RateOptimalScheduler::new(machine, cfg)
            .schedule(&fp_loop())
            .expect("ilp settles");
        assert!(s.attempts.iter().all(|a| a.race.is_none()));
        assert_eq!(s.solved_by(), SolvedBy::Ilp);
    }

    #[test]
    fn portfolio_matches_proven_period_and_counts_races() {
        let machine = Machine::example_pldi95();
        let g = fp_loop();
        let base = SchedulerConfig {
            heuristic_incumbent: false,
            ..Default::default()
        };
        let ilp = RateOptimalScheduler::new(machine.clone(), base.clone())
            .schedule(&g)
            .expect("ilp schedulable");
        let port = RateOptimalScheduler::new(
            machine.clone(),
            SchedulerConfig {
                engine: Engine::Portfolio,
                ..base
            },
        )
        .schedule(&g)
        .expect("portfolio schedulable");
        assert!(port.is_proven_optimal());
        assert_eq!(
            ilp.schedule.initiation_interval(),
            port.schedule.initiation_interval()
        );
        assert_eq!(port.schedule.validate(&g, &machine), Ok(()));
        let stats = port.solver_stats();
        // Every settled period was a race, and the win/undecided split
        // accounts for all of them exactly.
        assert_eq!(stats.races, port.attempts.len() as u32);
        assert_eq!(
            stats.races,
            stats.race_cp_wins + stats.race_ilp_wins + stats.race_undecided
        );
        for a in &port.attempts {
            let r = a.race.expect("portfolio attempt carries a race report");
            match a.outcome {
                PeriodOutcome::Feasible(SolvedBy::Ilp) => {
                    assert_eq!(r.winner, Some(RaceEngine::Ilp));
                }
                PeriodOutcome::Feasible(SolvedBy::Cp) => {
                    assert_eq!(r.winner, Some(RaceEngine::Cp));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn portfolio_cancellation_is_an_error() {
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let cfg = SchedulerConfig {
            engine: Engine::Portfolio,
            heuristic_incumbent: false,
            ..Default::default()
        };
        let err = RateOptimalScheduler::new(Machine::example_pldi95(), cfg)
            .schedule_with(&fp_loop(), &budget)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::Cancelled));
    }

    #[test]
    fn portfolio_survives_ilp_failure_with_cp_wins() {
        // With every ILP solve failing numerically, the CP racer must win
        // every race and the result is still exact. Whether the loser
        // reports its own failure or a cancellation depends on thread
        // interleaving (CP may win and cancel the ILP arm before it even
        // reaches the injected fault), so only the winner is asserted.
        let machine = Machine::example_pldi95();
        let g = fp_loop();
        let cfg = SchedulerConfig {
            engine: Engine::Portfolio,
            heuristic_incumbent: false,
            faults: FaultPlan {
                fail_ilp: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let s = RateOptimalScheduler::new(machine.clone(), cfg)
            .schedule(&g)
            .expect("cp wins every race");
        assert!(s.is_proven_optimal());
        assert_eq!(s.schedule.validate(&g, &machine), Ok(()));
        let stats = s.solver_stats();
        assert_eq!(stats.race_ilp_wins, 0);
        assert_eq!(stats.races, stats.race_cp_wins);
        assert!(s.attempts.iter().all(|a| {
            a.race
                .map(|r| r.winner == Some(RaceEngine::Cp))
                .unwrap_or(false)
        }));
    }

    #[test]
    fn injected_ilp_failure_degrades_to_heuristic() {
        let machine = Machine::example_pldi95();
        let g = fp_loop();
        let cfg = SchedulerConfig {
            heuristic_incumbent: false,
            faults: FaultPlan {
                fail_ilp: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let s = RateOptimalScheduler::new(machine.clone(), cfg)
            .schedule(&g)
            .expect("heuristic fallback carries the day");
        assert_eq!(s.schedule.validate(&g, &machine), Ok(()));
        assert!(s
            .attempts
            .iter()
            .any(|a| a.outcome == PeriodOutcome::EngineFailed));
    }
}
