//! The rate-optimal scheduling driver.
//!
//! Finding the minimum `T` is done exactly as in the paper's evaluation:
//! compute `T_lb = max(T_dep, T_res)`, then solve the unified ILP at
//! `T = T_lb, T_lb+1, …` until one is feasible. The first feasible period
//! is rate-optimal by construction (every smaller period is infeasible —
//! either proven by the ILP or excluded by the lower bound).

use crate::formulation::{self, FormulationOptions, MappingMode, Objective};
use crate::ScheduleError;
use swp_heuristics::IterativeModuloScheduler;
use swp_machine::PipelinedSchedule;
use std::time::Duration;
use swp_ddg::Ddg;
use swp_machine::Machine;
use swp_milp::{SolveError, SolveLimits};

/// Configuration for [`RateOptimalScheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// How mapping is handled (default: the paper's unified coloring).
    pub mapping: MappingMode,
    /// Objective at each fixed `T` (default: pure feasibility).
    pub objective: Objective,
    /// ILP budget per candidate period (default 10 s).
    pub time_limit_per_t: Option<Duration>,
    /// Give up after `T_lb + max_t_above_lb` (default 16).
    pub max_t_above_lb: u32,
    /// Prune rotation and color-permutation symmetry (default on).
    pub symmetry_breaking: bool,
    /// Use the exact class-packing capacity to refine `T_res` and reject
    /// impossible periods before solving (default on; ablatable).
    pub packing_bound: bool,
    /// Try iterative modulo scheduling at each candidate period before
    /// the ILP (default on). A heuristic schedule at `T` is a feasibility
    /// certificate, so rate-optimality is unaffected: every smaller
    /// period has still been refuted exactly. Turn off to measure pure
    /// ILP behaviour (Table 5).
    pub heuristic_incumbent: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            mapping: MappingMode::default(),
            objective: Objective::default(),
            time_limit_per_t: Some(Duration::from_secs(10)),
            max_t_above_lb: 16,
            symmetry_breaking: true,
            packing_bound: true,
            heuristic_incumbent: true,
        }
    }
}

/// Which engine settled a candidate period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolvedBy {
    /// The unified ILP.
    Ilp,
    /// The iterative-modulo-scheduling certificate (see
    /// [`SchedulerConfig::heuristic_incumbent`]).
    Heuristic,
}

/// Outcome of one candidate period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeriodOutcome {
    /// A schedule was found.
    Feasible(SolvedBy),
    /// The ILP proved no schedule exists at this period.
    Infeasible,
    /// Rejected before solving (modulo constraint / self-loop test).
    RejectedAtBuild,
    /// The time or node budget ran out undecided.
    TimedOut,
}

/// Statistics for one candidate period.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodAttempt {
    /// The candidate period.
    pub period: u32,
    /// What happened.
    pub outcome: PeriodOutcome,
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
    /// Simplex iterations across the search.
    pub lp_iterations: u64,
    /// Wall-clock spent on this period.
    pub elapsed: Duration,
    /// Variables in the ILP (0 if rejected at build).
    pub num_vars: usize,
    /// Constraints in the ILP (0 if rejected at build).
    pub num_constrs: usize,
}

/// A schedule together with how it was found.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// The schedule.
    pub schedule: PipelinedSchedule,
    /// Recurrence bound `T_dep`.
    pub t_dep: u32,
    /// Resource bound `T_res`.
    pub t_res: u32,
    /// Per-period solve log, in the order attempted.
    pub attempts: Vec<PeriodAttempt>,
}

impl ScheduleResult {
    /// Combined lower bound `max(T_dep, T_res)`.
    pub fn t_lb(&self) -> u32 {
        self.t_dep.max(self.t_res)
    }

    /// `T − T_lb`: zero means provably rate-optimal.
    pub fn slack_above_lb(&self) -> u32 {
        self.schedule.initiation_interval() - self.t_lb()
    }

    /// Whether the achieved period equals the lower bound.
    pub fn is_rate_optimal(&self) -> bool {
        self.slack_above_lb() == 0
    }

    /// Total branch-and-bound nodes over all attempted periods.
    pub fn total_nodes(&self) -> u64 {
        self.attempts.iter().map(|a| a.nodes).sum()
    }

    /// Total wall-clock over all attempted periods.
    pub fn total_elapsed(&self) -> Duration {
        self.attempts.iter().map(|a| a.elapsed).sum()
    }
}

/// Schedules loops at the fastest feasible initiation rate using the
/// paper's unified ILP.
///
/// ```
/// use swp_core::{RateOptimalScheduler, SchedulerConfig};
/// use swp_ddg::{Ddg, OpClass};
/// use swp_machine::Machine;
///
/// # fn main() -> Result<(), swp_core::ScheduleError> {
/// let mut g = Ddg::new();
/// let ld = g.add_node("load", OpClass::new(2), 3);
/// let fm = g.add_node("fmul", OpClass::new(1), 2);
/// g.add_edge(ld, fm, 0).unwrap();
///
/// let sched = RateOptimalScheduler::new(Machine::example_pldi95(), SchedulerConfig::default())
///     .schedule(&g)?;
/// assert!(sched.schedule.validate(&g, &Machine::example_pldi95()).is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RateOptimalScheduler {
    machine: Machine,
    config: SchedulerConfig,
}

impl RateOptimalScheduler {
    /// Creates a scheduler for `machine` under `config`.
    pub fn new(machine: Machine, config: SchedulerConfig) -> Self {
        RateOptimalScheduler { machine, config }
    }

    /// The machine this scheduler targets.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Finds a schedule at the smallest feasible period `≥ T_lb`.
    ///
    /// # Errors
    ///
    /// * [`ScheduleError::NoFinitePeriod`] — zero-distance cycle;
    /// * [`ScheduleError::UnknownClass`] — DDG/machine mismatch;
    /// * [`ScheduleError::NotFound`] — every period up to the configured
    ///   cap was infeasible or timed out (the attempts log tells which).
    pub fn schedule(&self, ddg: &Ddg) -> Result<ScheduleResult, ScheduleError> {
        let t_dep = ddg.t_dep().ok_or(ScheduleError::NoFinitePeriod)?;
        let t_res = match (self.config.mapping, self.config.packing_bound) {
            // Fixed-assignment problem: counting bound, optionally
            // strengthened by the exact packing capacity.
            (MappingMode::UnifiedColoring, true) => self.machine.t_res(ddg),
            (MappingMode::UnifiedColoring, false) => self.machine.t_res_counting(ddg),
            // Run-time unit choice: instances may rotate across units, so
            // only pure stage-demand counting is a valid bound.
            (MappingMode::CapacityOnly, _) => self.machine.t_res_capacity(ddg),
        }
            .map_err(|e| match e {
                swp_machine::MachineError::UnknownClass(c) => ScheduleError::UnknownClass(c),
                swp_machine::MachineError::NoUnits(n) => ScheduleError::BadMachine(n),
            })?;
        let t_lb = t_dep.max(t_res);
        let mut attempts = Vec::new();

        for period in t_lb..=t_lb + self.config.max_t_above_lb {
            match self.try_period(ddg, period, &mut attempts)? {
                Some(schedule) => {
                    return Ok(ScheduleResult {
                        schedule,
                        t_dep,
                        t_res,
                        attempts,
                    })
                }
                None => continue,
            }
        }
        Err(ScheduleError::NotFound {
            t_lb,
            t_max: t_lb + self.config.max_t_above_lb,
            attempts,
        })
    }

    /// Attempts exactly one period. `Ok(None)` means "move on".
    fn try_period(
        &self,
        ddg: &Ddg,
        period: u32,
        attempts: &mut Vec<PeriodAttempt>,
    ) -> Result<Option<PipelinedSchedule>, ScheduleError> {
        let started = std::time::Instant::now();
        // The heuristic produces *mapped* schedules; under CapacityOnly
        // the point is to study the capacity-only ILP, so skip it there.
        if self.config.heuristic_incumbent && self.config.mapping == MappingMode::UnifiedColoring {
            let ims = IterativeModuloScheduler::new(self.machine.clone());
            if let Some(schedule) = ims.schedule_at(ddg, period) {
                attempts.push(PeriodAttempt {
                    period,
                    outcome: PeriodOutcome::Feasible(SolvedBy::Heuristic),
                    nodes: 0,
                    lp_iterations: 0,
                    elapsed: started.elapsed(),
                    num_vars: 0,
                    num_constrs: 0,
                });
                return Ok(Some(schedule));
            }
        }
        let f = match formulation::build(
            ddg,
            &self.machine,
            period,
            FormulationOptions {
                mapping: self.config.mapping,
                objective: self.config.objective,
                symmetry_breaking: self.config.symmetry_breaking,
                packing_bound: self.config.packing_bound,
                ..FormulationOptions::standard()
            },
        ) {
            Ok(f) => f,
            Err(ScheduleError::PeriodInfeasible { .. }) => {
                attempts.push(PeriodAttempt {
                    period,
                    outcome: PeriodOutcome::RejectedAtBuild,
                    nodes: 0,
                    lp_iterations: 0,
                    elapsed: started.elapsed(),
                    num_vars: 0,
                    num_constrs: 0,
                });
                return Ok(None);
            }
            Err(e) => return Err(e),
        };
        let mut limits = SolveLimits {
            time_limit: self.config.time_limit_per_t,
            ..SolveLimits::default()
        };
        if self.config.objective == Objective::Feasible {
            limits.stop_at_first_incumbent = true;
        }
        let (num_vars, num_constrs) = (f.model.num_vars(), f.model.num_constrs());
        match f.model.solve_with(&limits) {
            Ok(sol) => {
                let stats = *sol.stats();
                let (starts, colors) = f.extract(&sol);
                let assignment = self.complete_assignment(ddg, period, &starts, &colors)?;
                let schedule = PipelinedSchedule::new(period, starts, assignment);
                attempts.push(PeriodAttempt {
                    period,
                    outcome: PeriodOutcome::Feasible(SolvedBy::Ilp),
                    nodes: stats.nodes,
                    lp_iterations: stats.lp_iterations,
                    elapsed: started.elapsed(),
                    num_vars,
                    num_constrs,
                });
                Ok(Some(schedule))
            }
            Err(SolveError::Infeasible) => {
                attempts.push(PeriodAttempt {
                    period,
                    outcome: PeriodOutcome::Infeasible,
                    nodes: 0,
                    lp_iterations: 0,
                    elapsed: started.elapsed(),
                    num_vars,
                    num_constrs,
                });
                Ok(None)
            }
            Err(SolveError::LimitReached(_)) => {
                attempts.push(PeriodAttempt {
                    period,
                    outcome: PeriodOutcome::TimedOut,
                    nodes: 0,
                    lp_iterations: 0,
                    elapsed: started.elapsed(),
                    num_vars,
                    num_constrs,
                });
                Ok(None)
            }
            Err(e) => Err(ScheduleError::Solver(e)),
        }
    }

    /// Fills unit assignments: colored nodes take their color; classes
    /// without coloring variables are mapped first-fit per class (always
    /// possible for clean or single-unit classes given capacity holds;
    /// under [`MappingMode::CapacityOnly`] first-fit may fail, and the
    /// schedule is returned unmapped — exactly the gap the paper closes).
    fn complete_assignment(
        &self,
        ddg: &Ddg,
        period: u32,
        starts: &[u32],
        colors: &[Option<u32>],
    ) -> Result<Vec<Option<u32>>, ScheduleError> {
        use std::collections::HashMap;
        let mut assignment: Vec<Option<u32>> = colors.to_vec();
        // usage: (class, fu, stage, residue) occupied?
        let mut usage: HashMap<(usize, u32, usize, u32), ()> = HashMap::new();
        // Commit colored nodes first.
        for (id, node) in ddg.nodes() {
            if let Some(fu) = assignment[id.index()] {
                let rt = &self
                    .machine
                    .fu_type(node.class)
                    .map_err(|_| ScheduleError::UnknownClass(node.class))?
                    .reservation;
                for s in 0..rt.stages() {
                    for l in rt.stage_offsets(s) {
                        let residue = (starts[id.index()] + l as u32) % period;
                        usage.insert((node.class.index(), fu, s, residue), ());
                    }
                }
            }
        }
        // First-fit the rest.
        for (id, node) in ddg.nodes() {
            if assignment[id.index()].is_some() {
                continue;
            }
            let fu_type = self
                .machine
                .fu_type(node.class)
                .map_err(|_| ScheduleError::UnknownClass(node.class))?;
            let rt = &fu_type.reservation;
            let mut chosen = None;
            'fu: for fu in 0..fu_type.count {
                for s in 0..rt.stages() {
                    for l in rt.stage_offsets(s) {
                        let residue = (starts[id.index()] + l as u32) % period;
                        if usage.contains_key(&(node.class.index(), fu, s, residue)) {
                            continue 'fu;
                        }
                    }
                }
                chosen = Some(fu);
                break;
            }
            if let Some(fu) = chosen {
                for s in 0..rt.stages() {
                    for l in rt.stage_offsets(s) {
                        let residue = (starts[id.index()] + l as u32) % period;
                        usage.insert((node.class.index(), fu, s, residue), ());
                    }
                }
                assignment[id.index()] = Some(fu);
            } else if self.config.mapping == MappingMode::UnifiedColoring {
                // Should be impossible: coloring covered every class that
                // could fail first-fit.
                return Err(ScheduleError::MappingGap {
                    node: id,
                    period,
                });
            }
            // CapacityOnly: leave unmapped; caller sees is_mapped() == false.
        }
        Ok(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ddg::OpClass;

    /// A small FP loop with a recurrence on the hazard machine.
    fn fp_loop() -> Ddg {
        let mut g = Ddg::new();
        let ld = g.add_node("load", OpClass::new(2), 3);
        let m1 = g.add_node("fmul", OpClass::new(1), 2);
        let a1 = g.add_node("fadd", OpClass::new(1), 2);
        let st = g.add_node("store", OpClass::new(2), 3);
        g.add_edge(ld, m1, 0).unwrap();
        g.add_edge(m1, a1, 0).unwrap();
        g.add_edge(a1, st, 0).unwrap();
        g.add_edge(a1, a1, 1).unwrap(); // accumulator: T_dep = 2
        g
    }

    #[test]
    fn schedules_at_lower_bound_on_hazard_machine() {
        let machine = Machine::example_pldi95();
        let s = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
            .schedule(&fp_loop())
            .expect("schedulable");
        assert_eq!(s.t_dep, 2);
        assert!(s.is_rate_optimal(), "expected T = T_lb, got slack {}", s.slack_above_lb());
        assert!(s.schedule.is_mapped());
        assert_eq!(s.schedule.validate(&fp_loop(), &machine), Ok(()));
    }

    #[test]
    fn capacity_only_schedule_validates_capacity() {
        let machine = Machine::example_pldi95();
        let cfg = SchedulerConfig {
            mapping: MappingMode::CapacityOnly,
            ..Default::default()
        };
        let s = RateOptimalScheduler::new(machine.clone(), cfg)
            .schedule(&fp_loop())
            .expect("schedulable");
        assert_eq!(s.schedule.validate(&fp_loop(), &machine), Ok(()));
    }

    #[test]
    fn reports_bounds_and_attempts() {
        let machine = Machine::example_pldi95();
        let s = RateOptimalScheduler::new(machine, SchedulerConfig::default())
            .schedule(&fp_loop())
            .expect("schedulable");
        assert!(!s.attempts.is_empty());
        assert!(matches!(
            s.attempts.last().map(|a| a.outcome.clone()),
            Some(PeriodOutcome::Feasible(_))
        ));
        assert_eq!(s.t_lb(), s.t_dep.max(s.t_res));
    }

    #[test]
    fn zero_distance_cycle_is_an_error() {
        let mut g = Ddg::new();
        let a = g.add_node("a", OpClass::new(1), 2);
        let b = g.add_node("b", OpClass::new(1), 2);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 0).unwrap();
        let err = RateOptimalScheduler::new(Machine::example_pldi95(), SchedulerConfig::default())
            .schedule(&g)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::NoFinitePeriod));
    }

    #[test]
    fn min_start_times_objective_compacts() {
        let machine = Machine::example_clean();
        let cfg = SchedulerConfig {
            objective: Objective::MinStartTimes,
            ..Default::default()
        };
        let s = RateOptimalScheduler::new(machine.clone(), cfg)
            .schedule(&fp_loop())
            .expect("schedulable");
        // Chain lengths: ld@0, fmul@3, fadd@5, store@7 is the compact optimum.
        assert_eq!(s.schedule.start_times(), &[0, 3, 5, 7]);
    }

    #[test]
    fn non_pipelined_machine_raises_t() {
        // 3 FP ops on 2 non-pipelined lat-2 units: T_res = ceil(6/2)... the
        // fp_loop has 2 FP ops -> ceil(4/2) = 2; with recurrence T_dep = 2.
        let machine = Machine::example_non_pipelined();
        let s = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
            .schedule(&fp_loop())
            .expect("schedulable");
        assert!(s.schedule.initiation_interval() >= 2);
        assert_eq!(s.schedule.validate(&fp_loop(), &machine), Ok(()));
    }
}
