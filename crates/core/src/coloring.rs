//! Circular-arc overlap graphs and exact coloring (paper §4.2, Figure 4).
//!
//! In the repetitive pattern, an operation's occupancy of its unit type
//! is a set of *circular arcs* mod `T` (one per stage). Two operations of
//! the same class can share a physical unit iff their arcs are disjoint;
//! assigning units is therefore circular-arc graph coloring [10].
//!
//! Inside the ILP this coloring is expressed with linear constraints
//! (see [`crate::formulation`]). This module provides the *external*
//! view: build the overlap graph of an already-placed pattern and color
//! it exactly by backtracking. It is used to
//!
//! * regenerate Figure 4;
//! * decide whether a capacity-feasible schedule (run-time unit choice)
//!   admits any fixed assignment at all — the paper's Table 1 vs. 2 gap;
//! * map heuristic schedules after the fact.

use std::collections::HashMap;
use swp_ddg::OpClass;
use swp_machine::{Machine, PlacedOp};

/// The pairwise overlap structure of same-class operations in a pattern.
#[derive(Debug, Clone)]
pub struct OverlapGraph {
    /// Number of operations (indices align with the input slice).
    n: usize,
    adj: Vec<Vec<usize>>,
    classes: Vec<OpClass>,
    capacity: Vec<u32>,
}

impl OverlapGraph {
    /// Builds the overlap graph of `ops` at the given period.
    ///
    /// Two ops overlap iff they have the same class and occupy a common
    /// `(stage, residue)` cell. Ops whose table self-collides at this
    /// period overlap *themselves* and make the graph uncolorable; they
    /// are recorded as self-edges.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or an op's class is unknown to `machine`.
    pub fn build(machine: &Machine, period: u32, ops: &[PlacedOp]) -> OverlapGraph {
        assert!(period > 0, "period must be positive");
        let mut cell_owners: HashMap<(usize, usize, u32), Vec<usize>> = HashMap::new();
        let mut classes = Vec::with_capacity(ops.len());
        let mut capacity = Vec::with_capacity(ops.len());
        for (i, op) in ops.iter().enumerate() {
            let fu = machine.fu_type(op.class).expect("known class");
            classes.push(op.class);
            capacity.push(fu.count);
            let rt = &fu.reservation;
            for s in 0..rt.stages() {
                for l in rt.stage_offsets(s) {
                    let residue = (op.offset + l as u32) % period;
                    cell_owners
                        .entry((op.class.index(), s, residue))
                        .or_default()
                        .push(i);
                }
            }
        }
        let n = ops.len();
        let mut adj = vec![Vec::new(); n];
        for owners in cell_owners.values() {
            for (x, &i) in owners.iter().enumerate() {
                for &j in &owners[x..] {
                    // j == i (listed twice in one cell) marks self-collision.
                    if i == j {
                        continue;
                    }
                    if !adj[i].contains(&j) {
                        adj[i].push(j);
                        adj[j].push(i);
                    }
                }
            }
            // Self-collision: the same op occupies one cell twice.
            let mut seen = HashMap::new();
            for &i in owners {
                *seen.entry(i).or_insert(0u32) += 1;
            }
            for (&i, &count) in &seen {
                if count > 1 && !adj[i].contains(&i) {
                    adj[i].push(i);
                }
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        OverlapGraph {
            n,
            adj,
            classes,
            capacity,
        }
    }

    /// Number of operations.
    pub fn num_ops(&self) -> usize {
        self.n
    }

    /// Ops overlapping op `i` (sorted; may include `i` for self-conflict).
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Whether `i` and `j` overlap.
    pub fn overlaps(&self, i: usize, j: usize) -> bool {
        self.adj[i].binary_search(&j).is_ok()
    }

    /// Exact coloring by backtracking: assigns each op a unit index in
    /// `0..capacity(class)` such that overlapping ops differ. Returns
    /// `None` if no assignment exists (including any self-conflict).
    ///
    /// Exponential in the worst case; the per-class cliques arising from
    /// loop patterns are small, and the search orders ops by degree.
    pub fn color(&self) -> Option<Vec<u32>> {
        if (0..self.n).any(|i| self.adj[i].binary_search(&i).is_ok()) {
            return None;
        }
        // Order by descending degree (fail-first).
        let mut order: Vec<usize> = (0..self.n).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.adj[i].len()));
        let mut colors: Vec<Option<u32>> = vec![None; self.n];
        if self.assign(&order, 0, &mut colors) {
            Some(colors.into_iter().map(|c| c.expect("complete")).collect())
        } else {
            None
        }
    }

    fn assign(&self, order: &[usize], pos: usize, colors: &mut Vec<Option<u32>>) -> bool {
        let Some(&i) = order.get(pos) else {
            return true;
        };
        'c: for c in 0..self.capacity[i] {
            for &j in &self.adj[i] {
                if self.classes[j] == self.classes[i] && colors[j] == Some(c) {
                    continue 'c;
                }
            }
            colors[i] = Some(c);
            if self.assign(order, pos + 1, colors) {
                return true;
            }
            colors[i] = None;
        }
        false
    }

    /// The chromatic demand per class: the minimum units needed for this
    /// placement, found by trying successively larger capacities.
    /// Returns `None` if some op self-conflicts.
    pub fn min_units(&self) -> Option<HashMap<OpClass, u32>> {
        if (0..self.n).any(|i| self.adj[i].binary_search(&i).is_ok()) {
            return None;
        }
        let mut demand: HashMap<OpClass, u32> = HashMap::new();
        let mut distinct: Vec<OpClass> = self.classes.clone();
        distinct.sort();
        distinct.dedup();
        for class in distinct {
            let members: Vec<usize> = (0..self.n).filter(|&i| self.classes[i] == class).collect();
            let mut k = 1u32;
            loop {
                let mut sub = self.clone();
                for &i in &members {
                    sub.capacity[i] = k;
                }
                // Color only considering this class (others get capacity
                // as-is; cross-class edges never exist anyway).
                if sub.color_class(&members, k) {
                    break;
                }
                k += 1;
                if k > members.len() as u32 {
                    break; // n colors always suffice for n arcs
                }
            }
            demand.insert(class, k);
        }
        Some(demand)
    }

    fn color_class(&self, members: &[usize], k: u32) -> bool {
        let mut colors: Vec<Option<u32>> = vec![None; self.n];
        self.assign_class(members, 0, k, &mut colors)
    }

    fn assign_class(
        &self,
        members: &[usize],
        pos: usize,
        k: u32,
        colors: &mut Vec<Option<u32>>,
    ) -> bool {
        let Some(&i) = members.get(pos) else {
            return true;
        };
        'c: for c in 0..k {
            for &j in &self.adj[i] {
                if colors[j] == Some(c) {
                    continue 'c;
                }
            }
            colors[i] = Some(c);
            if self.assign_class(members, pos + 1, k, colors) {
                return true;
            }
            colors[i] = None;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_machine::Machine;

    fn fp(offset: u32) -> PlacedOp {
        PlacedOp {
            class: OpClass::new(1),
            offset,
            fu: None,
        }
    }

    #[test]
    fn non_overlapping_ops_one_unit() {
        // Non-pipelined lat 2 at period 4: offsets 0 and 2 are disjoint.
        let m = Machine::example_non_pipelined();
        let g = OverlapGraph::build(&m, 4, &[fp(0), fp(2)]);
        assert!(!g.overlaps(0, 1));
        assert_eq!(g.min_units().unwrap()[&OpClass::new(1)], 1);
    }

    #[test]
    fn wrapping_arcs_overlap() {
        // Non-pipelined lat 2: offset 3 wraps to {3, 0}, clashing with
        // offset 0's {0, 1}.
        let m = Machine::example_non_pipelined();
        let g = OverlapGraph::build(&m, 4, &[fp(0), fp(3)]);
        assert!(g.overlaps(0, 1));
        let colors = g.color().expect("2 units available");
        assert_ne!(colors[0], colors[1]);
    }

    #[test]
    fn triangle_exceeds_two_units() {
        // Three pairwise-overlapping arcs need 3 colors but FP has 2.
        let m = Machine::example_non_pipelined();
        let g = OverlapGraph::build(&m, 2, &[fp(0), fp(0), fp(1)]);
        // At period 2 a lat-2 non-pipelined op fills the whole period:
        // everything overlaps everything.
        assert!(g.color().is_none());
        assert_eq!(g.min_units().unwrap()[&OpClass::new(1)], 3);
    }

    #[test]
    fn self_collision_blocks_coloring() {
        // Non-pipelined lat 2 at period 1: the op collides with itself.
        let m = Machine::example_non_pipelined();
        let g = OverlapGraph::build(&m, 1, &[fp(0)]);
        assert!(g.color().is_none());
        assert!(g.min_units().is_none());
    }

    #[test]
    fn hazard_stage_drives_overlap() {
        // PLDI'95 FP table: stage 3 at offsets {1, 2}. Ops at offsets 0
        // and 1 collide (stage-3 uses {1,2} vs {2,3}); ops at 0 and 2 do
        // not ({1,2} vs {3,0}).
        let m = Machine::example_pldi95();
        let g = OverlapGraph::build(&m, 4, &[fp(0), fp(1), fp(2)]);
        assert!(g.overlaps(0, 1));
        assert!(!g.overlaps(0, 2));
        assert!(g.overlaps(1, 2));
        let colors = g.color().expect("colorable with 2 units");
        assert_ne!(colors[0], colors[1]);
        assert_ne!(colors[1], colors[2]);
    }

    #[test]
    fn classes_do_not_interfere() {
        let m = Machine::example_non_pipelined();
        let ld = PlacedOp {
            class: OpClass::new(2),
            offset: 0,
            fu: None,
        };
        let g = OverlapGraph::build(&m, 4, &[fp(0), ld]);
        assert!(!g.overlaps(0, 1));
    }
}
