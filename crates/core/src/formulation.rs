//! The unified ILP formulations of the paper (§4 and §5).
//!
//! Given a DDG, a machine, and a candidate period `T`, [`Formulation`]
//! emits a mixed-integer model over:
//!
//! * `a_{t,i} ∈ {0,1}` — instruction `i` issues at pattern step `t`
//!   (the `A` matrix; paper eqs. (9)/(23): `Σ_t a_{t,i} = 1`);
//! * `k_i ≥ 0` integer and `t_i ≥ 0` — linked by
//!   `t_i = T·k_i + Σ_t t·a_{t,i}` (eqs. (7)/(22));
//! * dependences `t_j − t_i ≥ d_i − T·m_ij` (eqs. (4)/(8));
//! * per-class **capacity** rows: for each stage `s` and step `t`,
//!   `Σ_i U_s[t, i] ≤ R_r`, where the stage usage
//!   `U_s[t, i] = Σ_{l ∈ offsets(s)} a_{((t−l) mod T), i}` (eqs. (5)/(25))
//!   is inlined as a sum of `a` variables;
//! * and, in [`MappingMode::UnifiedColoring`], the **mapping** as a
//!   circular-arc coloring (§4.2/§5): colors `c_i ∈ [1, R_r]`, pairwise
//!   overlap indicators `δ_{ij}` forced to 1 whenever `i` and `j` occupy
//!   the same stage at the same step, and Hu's 0-1 linearization
//!   (`w_{ij}`) of `|c_i − c_j| ≥ δ_{ij}` (eqs. (12)–(14), Theorem 4.1).
//!
//! Clean pipelines never overlap on a stage across distinct ops issued at
//! distinct steps, and classes with a single unit are fully constrained
//! by capacity, so coloring machinery is emitted only where it can bind:
//! classes with `R_r ≥ 2` and at least two ops whose tables are unclean.

use crate::ScheduleError;
use swp_ddg::{Ddg, NodeId, OpClass};
use swp_machine::Machine;
use swp_milp::{Budget, Exhaustion, LinExpr, Model, Sense, VarId, VarKind};

/// How the mapping (instruction → physical unit) is handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MappingMode {
    /// Only per-class capacity constraints (paper eq. (5)): function units
    /// are chosen at run time. This is the pre-paper state of the art
    /// ([9]/[6]) and can yield schedules with **no** valid fixed
    /// assignment — the paper's Table 1.
    CapacityOnly,
    /// Scheduling and mapping solved together: capacity plus the
    /// circular-arc coloring constraints. Schedules come out with a valid
    /// unit for every instruction. This is the paper's contribution.
    #[default]
    UnifiedColoring,
}

/// Objective imposed on top of feasibility at a fixed `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Pure feasibility: rate-optimality comes from the driver trying
    /// `T = T_lb, T_lb+1, …` and stopping at the first feasible period.
    #[default]
    Feasible,
    /// Minimize `Σ_i t_i`: compact schedules, shorter prologs; also a
    /// useful LP guide (paper §4's heuristic remark).
    MinStartTimes,
    /// Minimize `Σ_r max_color_r`: the fewest physical units that still
    /// sustain this `T` (the paper's `min Σ C_r R_r` with unit costs).
    /// Only meaningful under [`MappingMode::UnifiedColoring`].
    MinUnits,
    /// Minimize total buffer (logical register) demand à la Ning & Gao
    /// [18], the extension the paper's §7 points to: for each dependence
    /// `(i, j)` the number of simultaneously live instances of `i`'s
    /// value is `⌈(t_j − t_i)/T⌉ + m_ij`, captured by an integer
    /// `B_ij ≥ (t_j − t_i)/T + m_ij` and minimized.
    MinBuffers,
}

/// Options controlling what [`build`] emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FormulationOptions {
    /// How the mapping is handled.
    pub mapping: MappingMode,
    /// Objective on top of feasibility.
    pub objective: Objective,
    /// Pin node 0's offset and each class's first color (safe: rotation
    /// and color permutation preserve feasibility).
    pub symmetry_breaking: bool,
    /// Reject periods where a class provably cannot pack onto its units
    /// (`ReservationTable::max_ops_per_period`); ablatable.
    pub packing_bound: bool,
    /// Emit the paper-literal formulation with *explicit* stage-usage
    /// variables `U_s[t, i]` defined by eq. (25) and capacity rows over
    /// them (eq. (5)), instead of inlining the `a`-sums. Mathematically
    /// equivalent; kept for fidelity and used in equivalence tests.
    pub explicit_usage: bool,
    /// Register-pressure cap: bound the number of simultaneously live
    /// values (counted per pattern residue, exactly as
    /// [`swp_machine::PipelinedSchedule::live_per_residue`]) by this
    /// limit. `None` leaves pressure unconstrained.
    pub max_live: Option<u32>,
}

impl FormulationOptions {
    /// The defaults the scheduler uses: unified coloring, feasibility
    /// objective, symmetry breaking and the packing pre-check on.
    pub fn standard() -> Self {
        FormulationOptions {
            mapping: MappingMode::UnifiedColoring,
            objective: Objective::Feasible,
            symmetry_breaking: true,
            packing_bound: true,
            explicit_usage: false,
            max_live: None,
        }
    }
}

/// Handles into the built model, used to read the solution back.
#[derive(Debug)]
pub struct Formulation {
    /// The model, ready to solve.
    pub model: Model,
    /// `a[i][t]` — issue indicator for node `i` at step `t`.
    pub a: Vec<Vec<VarId>>,
    /// `t_i` start-time variables.
    pub t: Vec<VarId>,
    /// `k_i` period-count variables.
    pub k: Vec<VarId>,
    /// `c_i` color variables for nodes that got one (else `None`).
    pub color: Vec<Option<VarId>>,
    /// The candidate period.
    pub period: u32,
}

/// Builds the ILP for scheduling `ddg` on `machine` at period `period`.
///
/// Convenience wrapper around [`build_with`] with an unlimited budget —
/// for callers (tests, benches, one-shot tools) that never cancel a
/// build in flight. The scheduler goes through [`build_with`] so that a
/// portfolio race loser aborts model construction promptly.
///
/// # Errors
///
/// [`ScheduleError::UnknownClass`] if the DDG uses a class the machine
/// does not define.
pub fn build(
    ddg: &Ddg,
    machine: &Machine,
    period: u32,
    options: FormulationOptions,
) -> Result<Formulation, ScheduleError> {
    build_with(ddg, machine, period, options, &Budget::unlimited())
}

/// Budget-aware [`build`]: consults `budget`'s **cancel flag** (only —
/// ticks and deadline are the solver's business, and the solver trips
/// on them the moment it starts) at every loop boundary, so a cancelled
/// caller pays at most one constraint family of dead work instead of
/// the whole model. This is what keeps portfolio-race cancellation
/// prompt: on small loops the build dominates the ILP's wall time.
///
/// # Errors
///
/// [`ScheduleError::UnknownClass`] for an undefined class,
/// [`ScheduleError::Cancelled`] when the budget's cancel flag fires
/// mid-build.
pub fn build_with(
    ddg: &Ddg,
    machine: &Machine,
    period: u32,
    options: FormulationOptions,
    budget: &Budget,
) -> Result<Formulation, ScheduleError> {
    assert!(period > 0, "period must be positive");
    let bail = || -> Result<(), ScheduleError> {
        match budget.check() {
            Err(Exhaustion::Cancelled) => Err(ScheduleError::Cancelled),
            _ => Ok(()),
        }
    };
    let FormulationOptions {
        mapping,
        objective,
        symmetry_breaking,
        packing_bound,
        explicit_usage,
        max_live,
    } = options;
    let n = ddg.num_nodes();
    let t_f = period as f64;
    let mut model = Model::new();

    // Horizon: t_i < T·k_max. Any feasible schedule can be compacted so
    // that every start time is below Σ d_i + T (each op waits at most the
    // full chain); we take a safe cap.
    let horizon = (ddg.total_latency() + period) as f64 + t_f;
    let k_max = (horizon / t_f).ceil();

    // --- Variables ---
    let mut a = Vec::with_capacity(n);
    let mut t_vars = Vec::with_capacity(n);
    let mut k_vars = Vec::with_capacity(n);
    bail()?;
    for (id, node) in ddg.nodes() {
        let i = id.index();
        let row: Vec<VarId> = (0..period)
            .map(|t| model.add_binary(format!("a[{t},{i}]")))
            .collect();
        a.push(row);
        t_vars.push(model.add_var(
            VarKind::Integer,
            0.0,
            horizon,
            format!("t[{i}]({})", node.name),
        ));
        k_vars.push(model.add_var(VarKind::Integer, 0.0, k_max, format!("k[{i}]")));
    }

    // --- Assignment: Σ_t a_{t,i} = 1 (eq. (9)/(23)) ---
    for row in &a {
        model.add_constr(
            row.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            Sense::Eq,
            1.0,
        );
    }

    // --- Linkage: t_i − T·k_i − Σ_t t·a_{t,i} = 0 (eq. (7)/(22)) ---
    for i in 0..n {
        let mut e = LinExpr::term(t_vars[i], 1.0);
        e.add_term(k_vars[i], -t_f);
        for (t, &v) in a[i].iter().enumerate() {
            if t > 0 {
                e.add_term(v, -(t as f64));
            }
        }
        model.add_constr(e, Sense::Eq, 0.0);
    }

    // --- Earliest-start lower bounds (longest-path potentials) ---
    // Implied by the dependence rows, but stating them as bounds tightens
    // every node LP and prunes branching early.
    if let Some(earliest) = ddg.earliest_starts(period) {
        for (i, &e) in earliest.iter().enumerate() {
            if e > 0 {
                model.set_lower_bound(t_vars[i], e as f64);
            }
        }
    } else {
        return Err(ScheduleError::PeriodInfeasible { period });
    }

    // --- Dependences: t_j − t_i ≥ d_i − T·m_ij (eq. (4)/(8)) ---
    for e in ddg.edges() {
        let d = ddg.node(e.src).latency as f64;
        let rhs = d - t_f * e.distance as f64;
        if e.src == e.dst {
            // 0 ≥ d − T·m: a pure period test, no variables involved.
            if 0.0 < rhs {
                return Err(ScheduleError::PeriodInfeasible { period });
            }
            continue;
        }
        let expr =
            LinExpr::term(t_vars[e.dst.index()], 1.0) - LinExpr::term(t_vars[e.src.index()], 1.0);
        model.add_constr(expr, Sense::Ge, rhs);
    }

    // --- Capacity per class/stage/step (eqs. (5)/(25)) ---
    for class in ddg.classes() {
        bail()?;
        let fu = machine
            .fu_type(class)
            .map_err(|_| ScheduleError::UnknownClass(class))?;
        let members = ddg.nodes_of_class(class);
        let rt = &fu.reservation;
        // Both pre-checks below assume *fixed* unit assignment: under
        // run-time choice, successive instances of one operation may
        // rotate across units, so neither self-collision nor per-unit
        // packing refutes a period (the capacity rows model the rotation
        // correctly — a wrapping op simply consumes two units' worth).
        if mapping == MappingMode::UnifiedColoring {
            // Modulo scheduling constraint [5, 11, 19]: one op must not
            // collide with its own next instances on its unit.
            if !rt.modulo_feasible(period) {
                return Err(ScheduleError::PeriodInfeasible { period });
            }
            // Packing pre-check: pigeonhole facts the LP cannot see.
            if packing_bound && (members.len() as u32) > fu.count * rt.max_ops_per_period(period) {
                return Err(ScheduleError::PeriodInfeasible { period });
            }
        }
        for s in 0..rt.stages() {
            bail()?;
            let offsets = rt.stage_offsets(s);
            if offsets.is_empty() {
                continue;
            }
            if explicit_usage {
                // Paper-literal: U_s[t, i] variables with their defining
                // equalities (eq. (25)), capacity over the U's (eq. (5)).
                let mut usage_vars: Vec<Vec<VarId>> = Vec::with_capacity(members.len());
                for &id in &members {
                    let i = id.index();
                    let row: Vec<VarId> = (0..period)
                        .map(|t| {
                            model.add_var(VarKind::Continuous, 0.0, 1.0, format!("U[{s},{t},{i}]"))
                        })
                        .collect();
                    for (t, &u) in row.iter().enumerate() {
                        let mut expr = LinExpr::term(u, 1.0);
                        for &l in &offsets {
                            let src = ((t as i64 - l as i64).rem_euclid(period as i64)) as usize;
                            expr.add_term(a[i][src], -1.0);
                        }
                        model.add_constr(expr, Sense::Eq, 0.0);
                    }
                    usage_vars.push(row);
                }
                for t in 0..period as usize {
                    let expr: Vec<(VarId, f64)> =
                        usage_vars.iter().map(|row| (row[t], 1.0)).collect();
                    model.add_constr(expr, Sense::Le, fu.count as f64);
                }
            } else {
                for t in 0..period {
                    let mut expr = LinExpr::new();
                    for &id in &members {
                        for &l in &offsets {
                            let src = ((t as i64 - l as i64).rem_euclid(period as i64)) as usize;
                            expr.add_term(a[id.index()][src], 1.0);
                        }
                    }
                    model.add_constr(expr, Sense::Le, fu.count as f64);
                }
            }
        }
    }

    // --- Issue bundle: per-residue width and slot-group rows ---
    // Steady-state cycle `c` issues exactly the ops with `t_i ≡ c (mod
    // T)`, so a per-cycle issue-width limit becomes `Σ_i a_{ρ,i} ≤ W`
    // for every residue `ρ`, and a slot-group cap the same sum over the
    // group's classes. Offset-based, so mapping mode is irrelevant.
    if let Some(bundle) = machine.bundle() {
        bail()?;
        if packing_bound {
            // Root pigeonholes, mirrored verbatim by the CP backend.
            // `Machine::bundle_bound` folds them into T_res, but the
            // formulation can be probed below T_res directly.
            if n as u64 > u64::from(bundle.width) * u64::from(period) {
                return Err(ScheduleError::PeriodInfeasible { period });
            }
            for g in &bundle.groups {
                let members: u64 = g
                    .classes
                    .iter()
                    .map(|&c| ddg.nodes_of_class(OpClass::new(c)).len() as u64)
                    .sum();
                if members > u64::from(g.cap) * u64::from(period) {
                    return Err(ScheduleError::PeriodInfeasible { period });
                }
            }
        }
        for rho in 0..period as usize {
            let expr: Vec<(VarId, f64)> = (0..n).map(|i| (a[i][rho], 1.0)).collect();
            model.add_constr(expr, Sense::Le, f64::from(bundle.width));
        }
        for g in &bundle.groups {
            bail()?;
            let members: Vec<usize> = g
                .classes
                .iter()
                .flat_map(|&c| ddg.nodes_of_class(OpClass::new(c)))
                .map(|id| id.index())
                .collect();
            if members.is_empty() {
                continue;
            }
            for rho in 0..period as usize {
                let expr: Vec<(VarId, f64)> = members.iter().map(|&i| (a[i][rho], 1.0)).collect();
                model.add_constr(expr, Sense::Le, f64::from(g.cap));
            }
        }
    }

    // --- Register pressure: live-value census per residue (§7) ---
    // For node `i` with an out-edge to `j`, the value is live for
    // `L_i = max_j (t_j + T·m_ij) − t_i` cycles, and contributes
    // `⌈(L_i − δ)/T⌉` live instances at residue `ρ`, where
    // `δ = (ρ − t_i) mod T`. An integer `live_{i,ρ} ≥ 0` bounded below
    // per out-edge by `T·live ≥ t_j + T·m_ij − t_i − δ_{i,ρ}` (with
    // `δ_{i,ρ} = Σ_r ((ρ−r) mod T)·a_{r,i}`, linear in the issue row)
    // takes exactly that ceiling at any feasible point that tightens it,
    // so `Σ_i live_{i,ρ} ≤ max_live` is feasible iff some schedule meets
    // the cap. Integrality of `live` is what makes the ceiling exact —
    // mirrors the `MinBuffers` B_ij pattern.
    if let Some(ml) = max_live {
        let live_ub = (horizon / t_f).ceil() + 2.0;
        let mut outs: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        for e in ddg.edges() {
            outs[e.src.index()].push((e.dst.index(), e.distance));
        }
        let mut live_vars: Vec<Vec<VarId>> = vec![Vec::new(); period as usize];
        for (i, out_edges) in outs.iter().enumerate() {
            bail()?;
            if out_edges.is_empty() {
                continue; // no consumer: never live, exactly as the checker counts
            }
            for rho in 0..period {
                let c = model.add_var(VarKind::Integer, 0.0, live_ub, format!("live[{i},{rho}]"));
                for &(j, m) in out_edges {
                    let mut expr = LinExpr::term(c, t_f);
                    if j != i {
                        // Self-loop: t_i cancels against t_j.
                        expr.add_term(t_vars[i], 1.0);
                        expr.add_term(t_vars[j], -1.0);
                    }
                    for (r, &v) in a[i].iter().enumerate() {
                        let delta = (rho as i64 - r as i64).rem_euclid(period as i64) as f64;
                        if delta != 0.0 {
                            expr.add_term(v, delta);
                        }
                    }
                    model.add_constr(expr, Sense::Ge, t_f * f64::from(m));
                }
                live_vars[rho as usize].push(c);
            }
        }
        for per_rho in &live_vars {
            if per_rho.is_empty() {
                continue;
            }
            model.add_constr(
                per_rho.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
                Sense::Le,
                f64::from(ml),
            );
        }
    }

    // --- Mapping: circular-arc coloring (§4.2, §5.1) ---
    let mut color: Vec<Option<VarId>> = vec![None; n];
    let mut unit_count_vars: Vec<VarId> = Vec::new();
    if mapping == MappingMode::UnifiedColoring {
        for class in ddg.classes() {
            bail()?;
            let fu = machine
                .fu_type(class)
                .map_err(|_| ScheduleError::UnknownClass(class))?;
            let members = ddg.nodes_of_class(class);
            let r = fu.count as f64;
            // Coloring can only bind when two unclean ops could share a
            // unit: with one unit, capacity rows already serialize; with a
            // clean table, ops at distinct steps never collide and ops at
            // equal steps are excluded by capacity. Minimizing units,
            // however, needs the overlap structure for every multi-op
            // class, clean or not.
            let needs_coloring =
                (fu.count >= 2 && members.len() >= 2 && !fu.reservation.is_clean())
                    || (objective == Objective::MinUnits && members.len() >= 2);
            if !needs_coloring && objective != Objective::MinUnits {
                continue;
            }
            for &id in &members {
                let c = model.add_var(VarKind::Integer, 1.0, r, format!("c[{}]", id.index()));
                color[id.index()] = Some(c);
            }
            if symmetry_breaking {
                // Colors are interchangeable: pin the first member to 1.
                if let Some(&first) = members.first() {
                    if let Some(c) = color[first.index()] {
                        model.set_upper_bound(c, 1.0);
                    }
                }
            }
            if objective == Objective::MinUnits {
                // max color per class, to be minimized.
                let u = model.add_var(
                    VarKind::Integer,
                    1.0,
                    r,
                    format!("units[{}]", class.index()),
                );
                for &id in &members {
                    if let Some(c) = color[id.index()] {
                        let expr = LinExpr::term(u, 1.0) - LinExpr::term(c, 1.0);
                        model.add_constr(expr, Sense::Ge, 0.0);
                    }
                }
                unit_count_vars.push(u);
            }
            if !needs_coloring {
                continue;
            }
            let rt = &fu.reservation;
            for (x, &i_id) in members.iter().enumerate() {
                bail()?;
                for &j_id in &members[x + 1..] {
                    let (i, j) = (i_id.index(), j_id.index());
                    // δ_{ij}: 1 if the two ops overlap on some stage/step.
                    let delta = model.add_binary(format!("ov[{i},{j}]"));
                    for s in 0..rt.stages() {
                        let offsets = rt.stage_offsets(s);
                        if offsets.is_empty() {
                            continue;
                        }
                        for t in 0..period {
                            // U_s[t,i] + U_s[t,j] − 1 ≤ δ_{ij}
                            let mut expr = LinExpr::term(delta, -1.0);
                            for &l in &offsets {
                                let src =
                                    ((t as i64 - l as i64).rem_euclid(period as i64)) as usize;
                                expr.add_term(a[i][src], 1.0);
                                expr.add_term(a[j][src], 1.0);
                            }
                            model.add_constr(expr, Sense::Le, 1.0);
                        }
                    }
                    // Hu linearization of |c_i − c_j| ≥ δ_{ij}:
                    //   c_i − c_j ≥ δ − R·w,   c_j − c_i ≥ δ − R·(1−w).
                    let w = model.add_binary(format!("w[{i},{j}]"));
                    let (ci, cj) = (
                        color[i].expect("member colored"),
                        color[j].expect("member colored"),
                    );
                    let e1 =
                        LinExpr::term(ci, 1.0) - LinExpr::term(cj, 1.0) - LinExpr::term(delta, 1.0)
                            + LinExpr::term(w, r);
                    model.add_constr(e1, Sense::Ge, 0.0);
                    let e2 = LinExpr::term(cj, 1.0)
                        - LinExpr::term(ci, 1.0)
                        - LinExpr::term(delta, 1.0)
                        - LinExpr::term(w, r);
                    model.add_constr(e2, Sense::Ge, -r);
                }
            }
        }
    }

    // --- Symmetry breaking on rotation: pin node 0 to offset 0. ---
    // Any periodic schedule can be rotated so an arbitrary instruction
    // issues at pattern step 0 (adding one period to every start keeps
    // all constraints), so this prunes a factor-T symmetry safely.
    if symmetry_breaking && n > 0 {
        for (t, &v) in a[0].iter().enumerate() {
            if t > 0 {
                model.set_upper_bound(v, 0.0);
            }
        }
    }

    // --- Objective ---
    match objective {
        Objective::Feasible => { /* minimize 0 */ }
        Objective::MinStartTimes => {
            model.minimize(t_vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>());
        }
        Objective::MinUnits => {
            model.minimize(
                unit_count_vars
                    .iter()
                    .map(|&v| (v, 1.0))
                    .collect::<Vec<_>>(),
            );
        }
        Objective::MinBuffers => {
            // One integer buffer count per dependence (Ning & Gao [18]):
            // B_ij ≥ (t_j − t_i)/T + m_ij; integrality of B makes the
            // bound the exact ceiling at the optimum.
            let mut buffer_vars = Vec::new();
            let horizon_buffers = (horizon / t_f).ceil() + 2.0;
            for (idx, e) in ddg.edges().enumerate() {
                if e.src == e.dst {
                    continue; // self-loops need exactly m_ij buffers, a constant
                }
                let b = model.add_var(VarKind::Integer, 0.0, horizon_buffers, format!("B[{idx}]"));
                // T·B − t_j + t_i ≥ T·m_ij
                let expr = LinExpr::term(b, t_f) - LinExpr::term(t_vars[e.dst.index()], 1.0)
                    + LinExpr::term(t_vars[e.src.index()], 1.0);
                model.add_constr(expr, Sense::Ge, t_f * e.distance as f64);
                buffer_vars.push(b);
            }
            model.minimize(buffer_vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>());
        }
    }

    Ok(Formulation {
        model,
        a,
        t: t_vars,
        k: k_vars,
        color,
        period,
    })
}

impl Formulation {
    /// Reads a solved model back into `(start_times, colors)`.
    ///
    /// Colors are returned 0-based (unit indices); nodes without coloring
    /// variables get `None` here and are mapped greedily by the driver.
    pub fn extract(&self, sol: &swp_milp::MipSolution) -> (Vec<u32>, Vec<Option<u32>>) {
        let starts = self
            .t
            .iter()
            .map(|&v| sol.value_int(v).max(0) as u32)
            .collect();
        let colors = self
            .color
            .iter()
            .map(|c| c.map(|v| (sol.value_int(v).max(1) - 1) as u32))
            .collect();
        (starts, colors)
    }

    /// Convenience: node id for row `i` of the variable tables.
    pub fn node(&self, i: usize) -> NodeId {
        NodeId::from_index(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ddg::OpClass;
    use swp_milp::SolveLimits;

    fn opts(mapping: MappingMode, objective: Objective) -> FormulationOptions {
        FormulationOptions {
            mapping,
            objective,
            ..FormulationOptions::standard()
        }
    }

    fn simple_chain() -> Ddg {
        let mut g = Ddg::new();
        let a = g.add_node("ld", OpClass::new(2), 3);
        let b = g.add_node("fmul", OpClass::new(1), 2);
        let c = g.add_node("st", OpClass::new(2), 3);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, c, 0).unwrap();
        g
    }

    #[test]
    fn builds_expected_variable_counts() {
        let g = simple_chain();
        let m = Machine::example_clean();
        let f = build(
            &g,
            &m,
            4,
            opts(MappingMode::CapacityOnly, Objective::Feasible),
        )
        .expect("builds");
        // 3 nodes × (4 a-vars + t + k) = 18 variables.
        assert_eq!(f.model.num_vars(), 18);
        assert_eq!(f.a.len(), 3);
        assert_eq!(f.a[0].len(), 4);
    }

    #[test]
    fn solve_and_extract_respects_dependences() {
        let g = simple_chain();
        let m = Machine::example_clean();
        let f = build(
            &g,
            &m,
            3,
            opts(MappingMode::UnifiedColoring, Objective::Feasible),
        )
        .expect("builds");
        let sol = f
            .model
            .solve_with(&SolveLimits::feasibility(std::time::Duration::from_secs(
                10,
            )))
            .expect("feasible");
        let (starts, _) = f.extract(&sol);
        assert!(starts[1] >= starts[0] + 3);
        assert!(starts[2] >= starts[1] + 2);
    }

    #[test]
    fn self_loop_infeasible_period_rejected_at_build() {
        let mut g = Ddg::new();
        let a = g.add_node("acc", OpClass::new(1), 2);
        g.add_edge(a, a, 1).unwrap();
        let m = Machine::example_clean();
        assert!(matches!(
            build(
                &g,
                &m,
                1,
                opts(MappingMode::CapacityOnly, Objective::Feasible)
            ),
            Err(ScheduleError::PeriodInfeasible { period: 1 })
        ));
        assert!(build(
            &g,
            &m,
            2,
            opts(MappingMode::CapacityOnly, Objective::Feasible)
        )
        .is_ok());
    }

    #[test]
    fn non_pipelined_period_below_mal_rejected() {
        let mut g = Ddg::new();
        g.add_node("f", OpClass::new(1), 2);
        let m = Machine::example_non_pipelined();
        // Fixed assignment: a non-pipelined lat-2 op cannot repeat at
        // period 1 on one unit.
        assert!(matches!(
            build(
                &g,
                &m,
                1,
                opts(MappingMode::UnifiedColoring, Objective::Feasible)
            ),
            Err(ScheduleError::PeriodInfeasible { period: 1 })
        ));
        // Run-time choice: instances may alternate between the 2 units,
        // so the build must NOT reject (the capacity rows decide).
        assert!(build(
            &g,
            &m,
            1,
            opts(MappingMode::CapacityOnly, Objective::Feasible)
        )
        .is_ok());
    }

    #[test]
    fn coloring_vars_only_where_needed() {
        let mut g = Ddg::new();
        for i in 0..3 {
            g.add_node(format!("f{i}"), OpClass::new(1), 2);
        }
        // Clean machine: no coloring vars even with 2 units.
        let f = build(
            &g,
            &Machine::example_clean(),
            3,
            opts(MappingMode::UnifiedColoring, Objective::Feasible),
        )
        .expect("builds");
        assert!(f.color.iter().all(|c| c.is_none()));
        // Hazard machine: FP class (2 units, unclean) gets colors.
        // (Period 6 so that 3 FP ops pack onto 2 hazard units.)
        let f = build(
            &g,
            &Machine::example_pldi95(),
            6,
            opts(MappingMode::UnifiedColoring, Objective::Feasible),
        )
        .expect("builds");
        assert!(f.color.iter().all(|c| c.is_some()));
    }

    #[test]
    fn explicit_usage_is_equivalent() {
        // Same loop, same period: the inlined and paper-literal
        // formulations must agree on feasibility and optimal objective.
        let g = simple_chain();
        let m = Machine::example_pldi95();
        for period in 2..6u32 {
            let solve = |explicit: bool| {
                let o = FormulationOptions {
                    objective: Objective::MinStartTimes,
                    explicit_usage: explicit,
                    ..FormulationOptions::standard()
                };
                build(&g, &m, period, o)
                    .ok()
                    .and_then(|f| f.model.solve().ok().map(|s| s.objective().round() as i64))
            };
            assert_eq!(solve(false), solve(true), "period {period}");
        }
    }

    #[test]
    fn min_buffers_objective_counts_live_values() {
        // Chain ld -> fmul -> st on the clean machine: with MinBuffers
        // the optimum packs values tightly; the reported objective must
        // match the schedule's own buffer accounting.
        let g = simple_chain();
        let m = Machine::example_clean();
        let o = FormulationOptions {
            objective: Objective::MinBuffers,
            mapping: MappingMode::CapacityOnly,
            ..FormulationOptions::standard()
        };
        let f = build(&g, &m, 3, o).expect("builds");
        let sol = f.model.solve().expect("feasible");
        let (starts, _) = f.extract(&sol);
        let sched = swp_machine::PipelinedSchedule::new(3, starts, vec![None; 3]);
        let (_, total) = sched.buffer_requirements(&g);
        assert_eq!(sol.objective().round() as i64, total as i64);
    }

    #[test]
    fn unknown_class_propagates() {
        let mut g = Ddg::new();
        g.add_node("z", OpClass::new(9), 1);
        let m = Machine::example_clean();
        assert!(matches!(
            build(
                &g,
                &m,
                2,
                opts(MappingMode::CapacityOnly, Objective::Feasible)
            ),
            Err(ScheduleError::UnknownClass(_))
        ));
    }
}
