//! Rate-optimal software pipelining in the presence of structural
//! hazards — the unified ILP scheduling + mapping framework of
//! Altman, Govindarajan & Gao (PLDI 1995).
//!
//! The crate turns a loop's data-dependence graph ([`swp_ddg::Ddg`]) and
//! a machine description ([`swp_machine::Machine`]) into a software-
//! pipelined schedule with a *fixed function-unit assignment*, at the
//! smallest feasible initiation interval:
//!
//! * [`formulation`] builds the paper's ILP at a candidate period `T`:
//!   the `A`-matrix issue variables, the `t = T·K + Aᵀ·[0..T)` linkage,
//!   dependence rows, per-stage capacity rows derived from reservation
//!   tables, and — the paper's contribution — the mapping as linear
//!   circular-arc-coloring constraints;
//! * [`RateOptimalScheduler`] drives `T = T_lb, T_lb+1, …` to the first
//!   feasible period;
//! * [`PipelinedSchedule`] carries the result, exposes the `T`/`K`/`A`
//!   matrices of the paper's Figure 3, and self-validates against an
//!   independent cycle-accurate checker;
//! * [`coloring`] gives the external circular-arc view (Figure 4) used to
//!   show that capacity-feasible schedules may admit no fixed assignment.
//!
//! # Example
//!
//! ```
//! use swp_core::{RateOptimalScheduler, SchedulerConfig};
//! use swp_ddg::{Ddg, OpClass};
//! use swp_machine::Machine;
//!
//! # fn main() -> Result<(), swp_core::ScheduleError> {
//! // a[j] = a[j-1] * b[j]   (recurrence through an FP multiply)
//! let mut g = Ddg::new();
//! let ld = g.add_node("load b[j]", OpClass::new(2), 3);
//! let mul = g.add_node("fmul", OpClass::new(1), 2);
//! let st = g.add_node("store a[j]", OpClass::new(2), 3);
//! g.add_edge(ld, mul, 0).unwrap();
//! g.add_edge(mul, mul, 1).unwrap();
//! g.add_edge(mul, st, 0).unwrap();
//!
//! let machine = Machine::example_pldi95();
//! let result = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
//!     .schedule(&g)?;
//! assert!(result.is_rate_optimal());
//! assert!(result.schedule.validate(&g, &machine).is_ok());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod coloring;
pub mod formulation;
mod scheduler;

pub use formulation::{Formulation, FormulationOptions, MappingMode, Objective};
pub use scheduler::{
    ConflictOracleMode, Engine, FaultPlan, Optimality, PeriodAttempt, PeriodOutcome, RaceEngine,
    RaceReport, RateOptimalScheduler, ReuseStats, ScheduleResult, SchedulerConfig, SolvedBy,
    SolverStats, WarmState,
};
pub use swp_machine::{DataLayout, Matrices, PipelinedSchedule, ValidationError};
pub use swp_milp::{Budget, CancelToken};

use std::error::Error;
use std::fmt;
use swp_ddg::{NodeId, OpClass};
use swp_milp::SolveError;

/// Errors raised by formulation building or the scheduling driver.
#[derive(Debug, Clone)]
pub enum ScheduleError {
    /// The DDG has a zero-distance dependence cycle: no period works.
    NoFinitePeriod,
    /// The DDG references a class the machine does not define.
    UnknownClass(OpClass),
    /// The machine itself is malformed (e.g. a zero-unit class).
    BadMachine(String),
    /// This specific period cannot work (modulo constraint or self-loop
    /// test failed before solving). The driver treats this as "try the
    /// next period".
    PeriodInfeasible {
        /// The rejected period.
        period: u32,
    },
    /// No feasible period found up to the configured cap.
    NotFound {
        /// The lower bound that the search started from.
        t_lb: u32,
        /// The largest period attempted.
        t_max: u32,
        /// The per-period log.
        attempts: Vec<PeriodAttempt>,
    },
    /// Internal invariant failure: a schedule deemed feasible could not
    /// be completed to a unit assignment.
    MappingGap {
        /// Node that could not be mapped.
        node: NodeId,
        /// Period at which it happened.
        period: u32,
    },
    /// The underlying MILP solver failed structurally.
    Solver(SolveError),
    /// A schedule produced by an engine failed the independent
    /// cycle-accurate re-check, and the other engine could not produce a
    /// verified schedule at that period either. Indicates a bug in the
    /// producing engine; the bad schedule is never returned.
    VerificationFailed {
        /// Period of the rejected schedule.
        period: u32,
        /// Engine that produced the rejected schedule.
        engine: SolvedBy,
        /// What the checker objected to.
        error: ValidationError,
    },
    /// The budget's cancel token fired; the search stopped cooperatively
    /// without an answer.
    Cancelled,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoFinitePeriod => {
                write!(f, "zero-distance dependence cycle: no finite period")
            }
            ScheduleError::UnknownClass(c) => write!(f, "machine does not define {c}"),
            ScheduleError::BadMachine(m) => write!(f, "malformed machine: {m}"),
            ScheduleError::PeriodInfeasible { period } => {
                write!(f, "period {period} infeasible before solving")
            }
            ScheduleError::NotFound { t_lb, t_max, .. } => {
                write!(f, "no schedule found for T in [{t_lb}, {t_max}]")
            }
            ScheduleError::MappingGap { node, period } => write!(
                f,
                "internal error: node {} unmappable at period {period}",
                node.index()
            ),
            ScheduleError::Solver(e) => write!(f, "solver failure: {e}"),
            ScheduleError::VerificationFailed {
                period,
                engine,
                error,
            } => write!(
                f,
                "schedule at period {period} from {engine:?} failed re-verification: {error}"
            ),
            ScheduleError::Cancelled => write!(f, "scheduling cancelled"),
        }
    }
}

impl Error for ScheduleError {}

impl From<SolveError> for ScheduleError {
    fn from(e: SolveError) -> Self {
        ScheduleError::Solver(e)
    }
}
