//! Cases promoted from differential-fuzzing campaigns (see
//! `crates/fuzz`), inlined here so the core driver guards them without
//! a dependency cycle.
//!
//! Each case is a minimized structure the fuzzer's shrinker produced
//! while exercising the oracle properties; the assertions mirror what
//! the differential runner checks — schedules validate, simulate at
//! rate `1/T`, respect the lower bounds, and both conflict oracles
//! agree on the proven optimum.

use swp_core::{
    ConflictOracleMode, Optimality, RateOptimalScheduler, ScheduleResult, SchedulerConfig,
};
use swp_ddg::{Ddg, OpClass};
use swp_machine::{simulate, FuType, Machine, ReservationTable, UnitPolicy};

fn schedule(machine: &Machine, ddg: &Ddg, oracle: ConflictOracleMode) -> ScheduleResult {
    let config = SchedulerConfig {
        time_limit_per_t: None,
        conflict_oracle: oracle,
        ..Default::default()
    };
    RateOptimalScheduler::new(machine.clone(), config)
        .schedule(ddg)
        .expect("promoted cases schedule")
}

fn check_both_oracles(machine: &Machine, ddg: &Ddg) -> u32 {
    let scan = schedule(machine, ddg, ConflictOracleMode::Scan);
    let auto = schedule(machine, ddg, ConflictOracleMode::Automaton);
    for r in [&scan, &auto] {
        let s = &r.schedule;
        let t = s.initiation_interval();
        assert!(t >= r.t_lb(), "period below the lower bound");
        s.validate(ddg, machine).expect("schedule validates");
        let policy = if s.is_mapped() {
            UnitPolicy::Fixed
        } else {
            UnitPolicy::Dynamic
        };
        simulate(machine, ddg, s, 4, policy).expect("schedule simulates");
        assert!(
            matches!(r.optimality, Optimality::Proven),
            "promoted cases are small enough to prove"
        );
    }
    assert_eq!(
        scan.schedule.initiation_interval(),
        auto.schedule.initiation_interval(),
        "conflict oracles disagree on the proven optimum"
    );
    scan.schedule.initiation_interval()
}

/// Shrunk by the fuzzer from a fault-injection campaign (seed 11): a
/// three-node recurrence with mixed latencies on a clean unit. The
/// recurrence bound (1+4+4 over distance 2) dominates the resource
/// bound.
#[test]
fn promoted_three_node_recurrence() {
    let machine = Machine::new(vec![FuType {
        name: "C0".into(),
        count: 1,
        latency: 1,
        reservation: ReservationTable::clean(1),
    }])
    .expect("valid machine");
    let mut g = Ddg::new();
    let a = g.add_node("n1", OpClass::new(0), 1);
    let b = g.add_node("n3", OpClass::new(0), 4);
    let c = g.add_node("n4", OpClass::new(0), 4);
    g.add_edge(a, b, 0).expect("valid");
    g.add_edge(b, c, 0).expect("valid");
    g.add_edge(c, a, 2).expect("valid");
    let t = check_both_oracles(&machine, &g);
    // ceil((1+4+4)/2) = 5 from the recurrence; 3 ops on 1 unit give 3.
    assert_eq!(t, 5);
}

/// Shrunk singleton: one op on one clean unit — the smallest case the
/// shrinker ever emits, pinned so the trivial path stays exact.
#[test]
fn promoted_singleton() {
    let machine = Machine::new(vec![FuType {
        name: "C0".into(),
        count: 1,
        latency: 1,
        reservation: ReservationTable::clean(1),
    }])
    .expect("valid machine");
    let mut g = Ddg::new();
    g.add_node("n0", OpClass::new(0), 1);
    assert_eq!(check_both_oracles(&machine, &g), 1);
}

/// Curated fuzz structure: an unclean pipeline revisiting stage 0 two
/// cycles after issue under a carried recurrence — the modulo
/// reservation interplay the paper is about.
#[test]
fn promoted_unclean_table_recurrence() {
    let table = ReservationTable::from_rows(&[&[true, false, true][..], &[false, true, false][..]])
        .expect("valid table");
    let machine = Machine::new(vec![FuType {
        name: "C0".into(),
        count: 1,
        latency: 3,
        reservation: table,
    }])
    .expect("valid machine");
    let mut g = Ddg::new();
    let a = g.add_node("n0", OpClass::new(0), 3);
    let b = g.add_node("n1", OpClass::new(0), 3);
    let c = g.add_node("n2", OpClass::new(0), 3);
    g.add_edge(a, b, 0).expect("valid");
    g.add_edge(b, c, 0).expect("valid");
    g.add_edge(c, a, 2).expect("valid");
    let t = check_both_oracles(&machine, &g);
    assert!(t >= 5, "recurrence bound ceil(9/2) = 5, got {t}");
}
