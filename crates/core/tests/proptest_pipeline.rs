//! Property tests over the whole scheduling pipeline on random loops.

use proptest::prelude::*;
use std::time::Duration;
use swp_core::{RateOptimalScheduler, SchedulerConfig};
use swp_ddg::{Ddg, OpClass};
use swp_machine::{simulate, Machine, UnitPolicy};

/// Random well-formed loop against the 3-class example machines:
/// forward edges keep distance 0 acyclic; carried edges have distance 1-2.
fn arb_loop() -> impl Strategy<Value = Ddg> {
    (2usize..7).prop_flat_map(|n| {
        let classes = proptest::collection::vec(0usize..3, n);
        let fwd = proptest::collection::vec((any::<u16>(), any::<u16>()), n - 1);
        let carried = proptest::option::of((0..n, 1u32..3));
        (classes, fwd, carried).prop_map(move |(classes, fwd, carried)| {
            let mut g = Ddg::new();
            let lat = [1u32, 2, 3];
            let ids: Vec<_> = classes
                .iter()
                .enumerate()
                .map(|(i, &c)| g.add_node(format!("n{i}"), OpClass::new(c), lat[c]))
                .collect();
            for (i, &(a, b)) in fwd.iter().enumerate() {
                // Edge into node i+1 from some earlier node.
                let src = (a as usize) % (i + 1);
                g.add_edge(ids[src], ids[i + 1], 0).expect("valid");
                if b % 3 == 0 && i >= 1 {
                    let src2 = (b as usize) % i;
                    g.add_edge(ids[src2], ids[i + 1], 0).expect("valid");
                }
            }
            if let Some((k, d)) = carried {
                g.add_edge(ids[k], ids[k], d).expect("valid");
            }
            g
        })
    })
}

fn scheduler(machine: Machine) -> RateOptimalScheduler {
    RateOptimalScheduler::new(
        machine,
        SchedulerConfig {
            time_limit_per_t: Some(Duration::from_secs(2)),
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every schedule the driver returns validates, is mapped, meets its
    /// bounds, and executes on the cycle-accurate simulator at rate 1/T.
    #[test]
    fn pipeline_invariants_hazard_machine(g in arb_loop()) {
        let machine = Machine::example_pldi95();
        let r = scheduler(machine.clone()).schedule(&g).expect("small loops schedule");
        let s = &r.schedule;
        prop_assert_eq!(s.validate(&g, &machine), Ok(()));
        prop_assert!(s.is_mapped());
        prop_assert!(s.initiation_interval() >= r.t_lb());
        // Offsets and k decompose start times.
        for id in g.node_ids() {
            prop_assert_eq!(
                s.k(id) * s.initiation_interval() + s.offset(id),
                s.start_time(id)
            );
        }
        // Simulation sustains the rate.
        let iters = 40;
        let rep = simulate(&machine, &g, s, iters, UnitPolicy::Fixed).expect("runs");
        let ideal = iters as f64 / s.initiation_interval() as f64;
        prop_assert!(rep.makespan as f64 <= (ideal.recip() * iters as f64 + 64.0) * s.initiation_interval() as f64);
        prop_assert!(rep.rate > 0.0);
    }

    /// The same invariants on the non-pipelined machine.
    #[test]
    fn pipeline_invariants_non_pipelined(g in arb_loop()) {
        let machine = Machine::example_non_pipelined();
        let r = scheduler(machine.clone()).schedule(&g).expect("small loops schedule");
        prop_assert_eq!(r.schedule.validate(&g, &machine), Ok(()));
        let rep = simulate(&machine, &g, &r.schedule, 20, UnitPolicy::Fixed).expect("runs");
        prop_assert!(rep.rate <= 1.0 / r.schedule.initiation_interval() as f64 + 1e-9);
    }

    /// Buffer accounting matches the codegen register expansion: total
    /// registers equal Σ max(1, per-node max edge demand).
    #[test]
    fn codegen_registers_match_buffers(g in arb_loop()) {
        let machine = Machine::example_pldi95();
        let r = scheduler(machine.clone()).schedule(&g).expect("schedules");
        let code = swp_core::codegen::generate(&r.schedule, &g, &machine, 6);
        let (per_edge, _) = r.schedule.buffer_requirements(&g);
        let mut want = vec![1u32; g.num_nodes()];
        for (e, &b) in g.edges().zip(&per_edge) {
            want[e.src.index()] = want[e.src.index()].max(b.max(1));
        }
        prop_assert_eq!(code.register_copies(), &want[..]);
    }

    /// Rotating a schedule by one period (adding T to every start) stays
    /// valid — the symmetry the formulation's offset pinning exploits.
    #[test]
    fn schedules_are_shift_invariant(g in arb_loop()) {
        let machine = Machine::example_pldi95();
        let r = scheduler(machine.clone()).schedule(&g).expect("schedules");
        let t = r.schedule.initiation_interval();
        let shifted = swp_machine::PipelinedSchedule::new(
            t,
            r.schedule.start_times().iter().map(|&x| x + t).collect(),
            r.schedule.assignment().to_vec(),
        );
        prop_assert_eq!(shifted.validate(&g, &machine), Ok(()));
    }
}
