//! End-to-end layout-equivalence property tests: the whole rate-optimal
//! driver — IMS incumbents, the unified ILP (with its sparse pivot),
//! verification, and the T-sweep — must make bit-identical decisions
//! under [`DataLayout::Legacy`] and [`DataLayout::Flat`]: same schedule,
//! same optimality claim, same per-period attempt log (nodes, simplex
//! iterations, verdicts), same aggregated solver effort.
//!
//! Replay a failing stream with `SWP_PROPTEST_SEED=<seed>`.

use proptest::prelude::*;
use swp_core::{RateOptimalScheduler, ScheduleResult, SchedulerConfig, SolverStats};
use swp_ddg::{Ddg, OpClass};
use swp_machine::{DataLayout, Machine};

/// Random well-formed loop against the 3-class example machines.
fn arb_loop() -> impl Strategy<Value = Ddg> {
    (2usize..7).prop_flat_map(|n| {
        let classes = proptest::collection::vec(0usize..3, n);
        let fwd = proptest::collection::vec((any::<u16>(), any::<u16>()), n - 1);
        let carried = proptest::option::of((0..n, 1u32..3));
        (classes, fwd, carried).prop_map(move |(classes, fwd, carried)| {
            let mut g = Ddg::new();
            let lat = [1u32, 2, 3];
            let ids: Vec<_> = classes
                .iter()
                .enumerate()
                .map(|(i, &c)| g.add_node(format!("n{i}"), OpClass::new(c), lat[c]))
                .collect();
            for (i, &(a, b)) in fwd.iter().enumerate() {
                let src = (a as usize) % (i + 1);
                g.add_edge(ids[src], ids[i + 1], 0).expect("valid");
                if b % 3 == 0 && i >= 1 {
                    let src2 = (b as usize) % i;
                    g.add_edge(ids[src2], ids[i + 1], 0).expect("valid");
                }
            }
            if let Some((k, d)) = carried {
                g.add_edge(ids[k], ids[k], d).expect("valid");
            }
            g
        })
    })
}

/// Schedules `g` with every wall-clock limit off, so the search is a
/// deterministic function of the input and the layout is the only
/// varying input.
fn run(machine: &Machine, g: &Ddg, layout: DataLayout, heuristic: bool) -> ScheduleResult {
    RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            time_limit_per_t: None,
            heuristic_incumbent: heuristic,
            data_layout: layout,
            ..Default::default()
        },
    )
    .schedule(g)
    .expect("small loops schedule")
}

fn assert_results_identical(a: &ScheduleResult, b: &ScheduleResult) {
    prop_assert_eq!(a.schedule.start_times(), b.schedule.start_times());
    prop_assert_eq!(a.schedule.assignment(), b.schedule.assignment());
    prop_assert_eq!(
        a.schedule.initiation_interval(),
        b.schedule.initiation_interval()
    );
    prop_assert_eq!(a.t_dep, b.t_dep);
    prop_assert_eq!(a.t_res, b.t_res);
    prop_assert_eq!(&a.optimality, &b.optimality);
    prop_assert_eq!(a.attempts.len(), b.attempts.len());
    for (x, y) in a.attempts.iter().zip(&b.attempts) {
        prop_assert_eq!(x.period, y.period);
        prop_assert_eq!(&x.outcome, &y.outcome);
        prop_assert_eq!(x.nodes, y.nodes, "bb nodes diverged at T={}", x.period);
        prop_assert_eq!(
            x.lp_iterations,
            y.lp_iterations,
            "simplex pivots diverged at T={}",
            x.period
        );
        prop_assert_eq!(x.num_vars, y.num_vars);
        prop_assert_eq!(x.num_constrs, y.num_constrs);
    }
    prop_assert_eq!(
        SolverStats::from_attempts(&a.attempts),
        SolverStats::from_attempts(&b.attempts)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full pipeline (IMS incumbents on) is layout-invariant on both
    /// example machines.
    #[test]
    fn driver_is_layout_invariant(g in arb_loop()) {
        for machine in [Machine::example_pldi95(), Machine::example_non_pipelined()] {
            let legacy = run(&machine, &g, DataLayout::Legacy, true);
            let flat = run(&machine, &g, DataLayout::Flat, true);
            assert_results_identical(&legacy, &flat);
        }
    }

    /// Pure-ILP mode (no heuristic incumbent — every period settled by
    /// branch-and-bound over the sparse/dense pivot) is layout-invariant.
    #[test]
    fn ilp_only_driver_is_layout_invariant(g in arb_loop()) {
        let machine = Machine::example_pldi95();
        let legacy = run(&machine, &g, DataLayout::Legacy, false);
        let flat = run(&machine, &g, DataLayout::Flat, false);
        assert_results_identical(&legacy, &flat);
    }
}
