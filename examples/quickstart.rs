//! Quickstart: schedule a small loop on the hazard machine and inspect
//! everything the scheduler gives back.
//!
//! Run: `cargo run --release --example quickstart`

use swp::core::{RateOptimalScheduler, SchedulerConfig};
use swp::ddg::{Ddg, OpClass};
use swp::machine::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The loop: s += a[i] * b[i]  (a dot-product step).
    // Classes on the example machines: 0 = Int, 1 = FP, 2 = Ld/St.
    let mut ddg = Ddg::new();
    let la = ddg.add_node("load a[i]", OpClass::new(2), 3);
    let lb = ddg.add_node("load b[i]", OpClass::new(2), 3);
    let mul = ddg.add_node("a*b", OpClass::new(1), 2);
    let acc = ddg.add_node("s += ab", OpClass::new(1), 2);
    ddg.add_edge(la, mul, 0)?;
    ddg.add_edge(lb, mul, 0)?;
    ddg.add_edge(mul, acc, 0)?;
    ddg.add_edge(acc, acc, 1)?; // the accumulator recurrence

    // The machine: 1 Int, 2 FP pipelines with a structural hazard,
    // 1 pipelined Load/Store.
    let machine = Machine::example_pldi95();
    println!("T_dep = {:?}", ddg.t_dep());
    println!("T_res = {:?}", machine.t_res(&ddg)?);

    // Schedule rate-optimally with a fixed function-unit assignment.
    let result =
        RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default()).schedule(&ddg)?;
    let s = &result.schedule;
    println!(
        "\nT = {} (rate-optimal: {})",
        s.initiation_interval(),
        result.is_rate_optimal()
    );
    match result.optimality {
        swp::core::Optimality::Proven => {
            println!("optimality: proven — every smaller period refuted")
        }
        swp::core::Optimality::BudgetExhausted { smallest_refuted } => println!(
            "optimality: budget-limited — true optimum in [{smallest_refuted}, {}]",
            s.initiation_interval()
        ),
    }
    for (id, node) in ddg.nodes() {
        println!(
            "  {:12} t = {:2}  offset = {}  stage k = {}  unit = {:?}",
            node.name,
            s.start_time(id),
            s.offset(id),
            s.k(id),
            s.fu(id)
        );
    }

    // Independent validation: dependences + cycle-accurate conflicts.
    s.validate(&ddg, &machine)?;
    println!("\nvalidated: dependences and reservation tables all satisfied");

    // The paper's T/K/A factoring.
    println!("\n{}", s.matrices());
    Ok(())
}
