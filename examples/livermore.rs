//! Schedule the classic numeric kernels (Livermore loops, linpack,
//! FIR, …) on both the hazard machine and the PowerPC-604 model, and
//! compare the achieved initiation intervals against the lower bounds.
//!
//! Run: `cargo run --release --example livermore`

use swp::core::{RateOptimalScheduler, SchedulerConfig};
use swp::loops::{kernels, ClassConvention};
use swp::machine::Machine;

fn run(label: &str, machine: &Machine, conv: ClassConvention) {
    println!("== {label} ==");
    println!(
        "{:<24} {:>5} {:>5} {:>4} {:>6} {:>8}",
        "kernel", "nodes", "T_lb", "T", "rate?", "time"
    );
    let scheduler = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default());
    for k in kernels::all(machine, conv) {
        match scheduler.schedule(&k.ddg) {
            Ok(r) => {
                r.schedule
                    .validate(&k.ddg, machine)
                    .expect("scheduler output must validate");
                println!(
                    "{:<24} {:>5} {:>5} {:>4} {:>6} {:>7}ms",
                    k.name,
                    k.ddg.num_nodes(),
                    r.t_lb(),
                    r.schedule.initiation_interval(),
                    if r.is_rate_optimal() { "yes" } else { "no" },
                    r.total_elapsed().as_millis(),
                );
            }
            Err(e) => println!("{:<24} failed: {e}", k.name),
        }
    }
    println!();
}

fn main() {
    run(
        "hazard machine (PLDI '95 example)",
        &Machine::example_pldi95(),
        ClassConvention::example(),
    );
    run(
        "non-pipelined FP/Ld-St (paper Problem 1)",
        &Machine::example_non_pipelined(),
        ClassConvention::example(),
    );
    run(
        "PowerPC-604 model",
        &Machine::ppc604(),
        ClassConvention::ppc604(),
    );
}
