//! The paper's objective `min Σ C_r·R_r`: find the fewest function units
//! that still sustain a target initiation interval, by running the
//! unified formulation with the unit-minimizing objective.
//!
//! Run: `cargo run --release --example min_units`

use swp::core::coloring::OverlapGraph;
use swp::core::{Objective, RateOptimalScheduler, SchedulerConfig};
use swp::loops::{kernels, ClassConvention};
use swp::machine::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::example_pldi95();
    let conv = ClassConvention::example();

    println!("How much hardware does each kernel really need at its best rate?\n");
    println!(
        "{:<24} {:>3} | {:>8} {:>8}",
        "kernel", "T", "FP used", "LdSt used"
    );
    let scheduler = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            objective: Objective::MinUnits,
            heuristic_incumbent: false, // the objective needs the ILP
            time_limit_per_t: Some(std::time::Duration::from_secs(5)),
            ..Default::default()
        },
    );
    // A representative subset keeps the demo around a minute; drop the
    // filter to sweep every kernel.
    let picks = [
        "daxpy",
        "ddot",
        "livermore5",
        "livermore11",
        "stencil3",
        "horner",
        "matvec_inner",
        "newton_recip",
    ];
    for k in kernels::all(&machine, conv)
        .into_iter()
        .filter(|k| picks.contains(&k.name.as_str()))
    {
        let Ok(r) = scheduler.schedule(&k.ddg) else {
            println!("{:<24} unschedulable in range", k.name);
            continue;
        };
        // Count distinct units actually used per class, and cross-check
        // with the exact chromatic demand of the final placement.
        let ops = r.schedule.placed_ops(&k.ddg);
        let overlap = OverlapGraph::build(&machine, r.schedule.initiation_interval(), &ops);
        let demand = overlap
            .min_units()
            .expect("mapped schedules never self-collide");
        let used = |class: usize| {
            demand
                .get(&swp::ddg::OpClass::new(class))
                .copied()
                .unwrap_or(0)
        };
        println!(
            "{:<24} {:>3} | {:>8} {:>8}",
            k.name,
            r.schedule.initiation_interval(),
            used(1),
            used(2),
        );
        r.schedule.validate(&k.ddg, &machine)?;
    }
    println!(
        "\n(\"used\" is the chromatic demand of the final placement — the minimum\n\
         number of physical units of each class that this schedule occupies.)"
    );
    Ok(())
}
