//! The paper's §2 walkthrough end-to-end: the gap between run-time unit
//! choice and fixed assignment, and how the unified ILP closes it.
//!
//! Run: `cargo run --release --example motivating_example`

use swp::core::coloring::OverlapGraph;
use swp::core::{MappingMode, RateOptimalScheduler, SchedulerConfig};
use swp::loops::kernels;
use swp::machine::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ddg = kernels::motivating_example();
    let machine = Machine::example_pldi95();

    println!("DDG (paper Figure 1):\n{}", ddg.to_dot());
    println!(
        "bounds: T_dep = {:?}, T_res = {}, T_lb = {:?}\n",
        ddg.t_dep(),
        machine.t_res(&ddg)?,
        machine.t_lower_bound(&ddg)?
    );

    // 1. The pre-paper world: capacity constraints only (units picked at
    //    run time). Rate-optimal at T = 3...
    let capacity = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            mapping: MappingMode::CapacityOnly,
            ..Default::default()
        },
    )
    .schedule(&ddg)?;
    let t = capacity.schedule.initiation_interval();
    println!(
        "capacity-only ILP: T = {t}, t_i = {:?}",
        capacity.schedule.start_times()
    );

    // ...but no fixed assignment exists:
    let ops = capacity.schedule.placed_ops(&ddg);
    let overlap = OverlapGraph::build(&machine, t, &ops);
    println!(
        "fixed assignment at T = {t}: {}",
        match overlap.color() {
            Some(c) => format!("exists {c:?}"),
            None => "IMPOSSIBLE — the schedule is unimplementable on 2 FP units".into(),
        }
    );

    // 2. The paper's unified scheduling + mapping: first feasible period
    //    is T = 4, with a valid mapping built in.
    let unified =
        RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default()).schedule(&ddg)?;
    println!(
        "\nunified ILP: T = {}, t_i = {:?}, units = {:?}",
        unified.schedule.initiation_interval(),
        unified.schedule.start_times(),
        unified.schedule.assignment()
    );
    unified.schedule.validate(&ddg, &machine)?;
    println!("validated against the cycle-accurate checker");

    println!(
        "\nattempt log: {:?}",
        unified
            .attempts
            .iter()
            .map(|a| format!("T={} {:?}", a.period, a.outcome))
            .collect::<Vec<_>>()
    );
    Ok(())
}
