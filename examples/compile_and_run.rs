//! The full compiler pipeline on one loop written in the textual loop
//! language: parse → bound → schedule (unified ILP) → generate
//! prolog/kernel/epilog with modulo variable expansion → execute on the
//! cycle-accurate simulator and confirm the sustained rate is 1/T.
//!
//! Run: `cargo run --release --example compile_and_run`

use swp::core::{codegen, RateOptimalScheduler, SchedulerConfig};
use swp::loops::{parse::parse_loop, ClassConvention};
use swp::machine::{simulate, Machine, UnitPolicy};

const SOURCE: &str = "
# y[i] = y[i] + a * x[i]; s += y[i]   (daxpy with a running sum)
loop daxpy_sum {
    t1 = load x[i]
    t2 = load y[i]
    t3 = fmul t1, a
    t4 = fadd t2, t3
    s  = fadd s@1, t4
    store t4
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::example_pldi95();
    let conv = ClassConvention::example();

    // 1. Parse.
    let parsed = parse_loop(SOURCE, &machine, &conv)?;
    println!(
        "parsed `{}`: {} ops, {} dependences, T_dep = {:?}, T_res = {}",
        parsed.name,
        parsed.ddg.num_nodes(),
        parsed.ddg.num_edges(),
        parsed.ddg.t_dep(),
        machine.t_res(&parsed.ddg)?,
    );

    // 2. Schedule rate-optimally with mapping.
    let result = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
        .schedule(&parsed.ddg)?;
    let schedule = &result.schedule;
    println!(
        "scheduled at T = {} (rate-optimal: {}), units = {:?}",
        schedule.initiation_interval(),
        result.is_rate_optimal(),
        schedule.assignment()
    );
    schedule.validate(&parsed.ddg, &machine)?;

    // 3. Generate the flat program.
    let code = codegen::generate(schedule, &parsed.ddg, &machine, 5);
    println!(
        "\nflat program (5 iterations, {} registers after modulo variable expansion):\n{}",
        code.total_registers(),
        code
    );

    // 4. Execute 200 iterations and measure the sustained rate.
    let report = simulate(&machine, &parsed.ddg, schedule, 200, UnitPolicy::Fixed)?;
    println!(
        "simulated 200 iterations in {} cycles: {:.4} iterations/cycle (1/T = {:.4})",
        report.makespan,
        report.rate,
        1.0 / schedule.initiation_interval() as f64,
    );
    for (ci, fu_type) in machine.types().iter().enumerate() {
        for fu in 0..fu_type.count as usize {
            println!(
                "  {}[{}] utilization: {:>5.1}%",
                fu_type.name,
                fu,
                100.0 * report.utilization(ci, fu)
            );
        }
    }
    Ok(())
}
