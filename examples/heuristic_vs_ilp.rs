//! Schedule quality: the exact unified ILP vs. iterative modulo
//! scheduling vs. plain list modulo scheduling, over the kernel library
//! and a slice of the synthetic corpus.
//!
//! Run: `cargo run --release --example heuristic_vs_ilp`

use swp::core::{RateOptimalScheduler, SchedulerConfig};
use swp::heuristics::{IterativeModuloScheduler, ListModuloScheduler};
use swp::loops::suite::{generate, SuiteConfig};
use swp::loops::{kernels, ClassConvention};
use swp::machine::Machine;

fn main() {
    let machine = Machine::example_pldi95();
    let ilp = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default());
    let ims = IterativeModuloScheduler::new(machine.clone());
    let list = ListModuloScheduler::new(machine.clone());

    println!(
        "{:<24} {:>5} | {:>4} {:>4} {:>4}",
        "loop", "T_lb", "ILP", "IMS", "LIST"
    );
    let mut loops: Vec<(String, swp::ddg::Ddg)> =
        kernels::all(&machine, ClassConvention::example())
            .into_iter()
            .map(|k| (k.name, k.ddg))
            .collect();
    for l in generate(&SuiteConfig {
        num_loops: 40,
        ..SuiteConfig::pldi95_default()
    }) {
        loops.push((l.name, l.ddg));
    }

    let (mut ilp_wins, mut ties, mut n, mut proven) = (0u32, 0u32, 0u32, 0u32);
    for (name, ddg) in &loops {
        let t_lb = machine
            .t_lower_bound(ddg)
            .expect("classes known")
            .expect("finite period");
        // `*` marks a period proven minimal (every smaller one refuted);
        // a budget-limited result would print without the star.
        let a = ilp.schedule(ddg).map(|r| {
            if r.is_proven_optimal() {
                proven += 1;
            }
            (r.schedule.initiation_interval(), r.is_proven_optimal())
        });
        let b = ims.schedule(ddg).map(|r| r.schedule.initiation_interval());
        let c = list.schedule(ddg).map(|r| r.schedule.initiation_interval());
        fn fmt<E>(x: &Result<u32, E>) -> String {
            match x {
                Ok(t) => t.to_string(),
                Err(_) => "-".into(),
            }
        }
        let ilp_cell = match &a {
            Ok((t, true)) => format!("{t}*"),
            Ok((t, false)) => t.to_string(),
            Err(_) => "-".into(),
        };
        println!(
            "{name:<24} {t_lb:>5} | {ilp_cell:>4} {:>4} {:>4}",
            fmt(&b),
            fmt(&c)
        );
        let a = a.map(|(t, _)| t);
        if let (Ok(a), Ok(b)) = (&a, &b) {
            n += 1;
            if a < b {
                ilp_wins += 1;
            } else if a == b {
                ties += 1;
            }
            assert!(a <= b, "exact method beaten by a heuristic on {name}");
        }
    }
    println!(
        "\nof {n} loops both solved: ILP strictly better on {ilp_wins}, tied on {ties};\n\
         {proven} ILP results proven minimal (marked *).\n\
         The ILP's value is the guarantee: a starred T is provably minimal\n\
         (all smaller periods refuted), which a heuristic can never certify.\n\
         Budget-limited runs report Optimality::BudgetExhausted instead, with\n\
         the refutation frontier bracketing the true optimum."
    );
}
