//! Bring your own target: describe a machine in the text format, write
//! the loop in the loop language, and study how hazard structure changes
//! the achievable initiation interval.
//!
//! Run: `cargo run --release --example custom_machine`

use swp::core::{RateOptimalScheduler, SchedulerConfig};
use swp::ddg::OpClass;
use swp::loops::{parse::parse_loop, ClassConvention};
use swp::machine::{parse_machine, CollisionInfo};

const LOOP_SRC: &str = "
loop stencil {
    a0 = load x[i-1]
    a1 = load x[i]
    a2 = load x[i+1]
    m0 = fmul a0, w0
    m1 = fmul a1, w1
    m2 = fmul a2, w2
    s0 = fadd m0, m1
    s1 = fadd s0, m2
    store s1
}";

/// Three variants of the same machine that differ only in the FP
/// pipeline's internal structure.
const MACHINES: [(&str, &str); 3] = [
    (
        "clean FP (no hazards)",
        "machine clean {
            unit INT count=1 latency=1 clean
            unit FP  count=2 latency=2 clean
            unit MEM count=1 latency=3 clean
        }",
    ),
    (
        "FP with a late-stage hazard",
        "machine hazard {
            unit INT count=1 latency=1 clean
            unit FP  count=2 latency=2 table[X.. / .X. / .XX]
            unit MEM count=1 latency=3 clean
        }",
    ),
    (
        "non-pipelined FP",
        "machine blocking {
            unit INT count=1 latency=1 clean
            unit FP  count=2 latency=2 nonpipelined
            unit MEM count=1 latency=3 clean
        }",
    ),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let conv = ClassConvention {
        int: OpClass::new(0),
        fp: OpClass::new(1),
        ldst: OpClass::new(2),
        fdiv: None,
    };
    println!(
        "{:<28} {:>9} {:>8} {:>6} {:>4} {:>6}",
        "machine", "forbidden", "FP MAL", "T_lb", "T", "rate?"
    );
    for (label, src) in MACHINES {
        let (_, machine) = parse_machine(src)?;
        let parsed = parse_loop(LOOP_SRC, &machine, &conv)?;
        let fp = machine.fu_type(OpClass::new(1))?;
        let info = CollisionInfo::analyze(&fp.reservation);
        let r = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
            .schedule(&parsed.ddg)?;
        r.schedule.validate(&parsed.ddg, &machine)?;
        println!(
            "{:<28} {:>9} {:>8} {:>6} {:>4} {:>6}",
            label,
            format!("{:?}", info.forbidden_latencies()),
            info.mal(),
            r.t_lb(),
            r.schedule.initiation_interval(),
            if r.is_rate_optimal() { "yes" } else { "no" },
        );
    }
    println!(
        "\nSame loop, same unit counts and latencies — only the *internal* pipeline\n\
         structure differs, and the achievable initiation interval moves with it.\n\
         That sensitivity is exactly what the paper's unified scheduling + mapping\n\
         formulation is built to handle."
    );
    Ok(())
}
