//! Exact-arithmetic audit: the `f64` LP path agrees with the exact
//! rational simplex on structured LPs, and LP relaxations of real
//! scheduling formulations bound their MIP optima.

use swp::core::{formulation, formulation::FormulationOptions, MappingMode, Objective};
use swp::ddg::{Ddg, OpClass};
use swp::machine::Machine;
use swp::milp::exact::{solve_lp_exact, ExactLp, ExactOutcome};
use swp::milp::simplex::{solve_lp, LpProblem};
use swp::milp::{LpOutcome, Model, Sense};

#[test]
fn relaxation_bounds_the_scheduling_mip() {
    // Tiny loop on the hazard machine at its T_lb.
    let mut g = Ddg::new();
    let a = g.add_node("ld", OpClass::new(2), 3);
    let b = g.add_node("fmul", OpClass::new(1), 2);
    g.add_edge(a, b, 0).unwrap();
    g.add_edge(b, b, 1).unwrap();
    let machine = Machine::example_pldi95();

    let f = formulation::build(
        &g,
        &machine,
        2,
        FormulationOptions {
            mapping: MappingMode::UnifiedColoring,
            objective: Objective::MinStartTimes,
            ..FormulationOptions::standard()
        },
    )
    .expect("builds");

    let sol = f.model.solve().expect("feasible");
    // The claimed optimum must satisfy its own model.
    assert!(f.model.is_feasible_point(sol.values(), 1e-5));
    // And the LP relaxation must lower-bound it.
    let relaxed_sol = f.model.relax().solve().expect("relaxation feasible");
    assert!(
        relaxed_sol.objective() <= sol.objective() + 1e-6,
        "LP relaxation {} must lower-bound MIP {}",
        relaxed_sol.objective(),
        sol.objective()
    );
}

#[test]
fn relaxation_of_infeasible_period_detects_or_bounds() {
    // At period 1 the motivating example is rejected at build time
    // (self-loop needs T >= 2; the FP table cannot repeat at T = 1).
    let g = swp::loops::kernels::motivating_example();
    let machine = Machine::example_pldi95();
    assert!(formulation::build(&g, &machine, 1, FormulationOptions::standard()).is_err());
}

#[test]
fn f64_and_exact_paths_agree_on_assignment_lps() {
    // An assignment-polytope LP (naturally integral): both paths must
    // find the same optimum, and the exact one must be integral.
    let n = 4;
    let cost = |i: usize, j: usize| ((i * 3 + j * 7) % 5) as f64 + 1.0;
    let mut obj = Vec::new();
    let mut rows: Vec<(Vec<(usize, f64)>, Sense, f64)> = Vec::new();
    for i in 0..n {
        for j in 0..n {
            obj.push(cost(i, j));
        }
    }
    for i in 0..n {
        rows.push(((0..n).map(|j| (i * n + j, 1.0)).collect(), Sense::Eq, 1.0));
        rows.push(((0..n).map(|j| (j * n + i, 1.0)).collect(), Sense::Eq, 1.0));
    }
    let p = LpProblem {
        obj,
        rows,
        lo: vec![0.0; n * n],
        hi: vec![1.0; n * n],
    };
    let f = match solve_lp(&p) {
        LpOutcome::Optimal(s) => s,
        other => panic!("expected optimal, got {other:?}"),
    };
    let (e_obj, e_x) = match solve_lp_exact(&ExactLp::from_f64_problem(&p)) {
        ExactOutcome::Optimal { objective, x } => (objective, x),
        other => panic!("expected optimal, got {other:?}"),
    };
    assert!((f.objective - e_obj.to_f64()).abs() < 1e-8);
    for v in &e_x {
        assert!(v.is_integer(), "assignment LP must be integral, got {v}");
    }
}

#[test]
fn capacity_conflicts_are_infeasible() {
    // Two ops forced to the same slot with capacity one.
    let mut m = Model::new();
    let a0 = m.add_binary("a0");
    let b0 = m.add_binary("b0");
    m.add_constr([(a0, 1.0)], Sense::Eq, 1.0);
    m.add_constr([(b0, 1.0)], Sense::Eq, 1.0);
    m.add_constr([(a0, 1.0), (b0, 1.0)], Sense::Le, 1.0);
    assert!(matches!(m.solve(), Err(swp::milp::SolveError::Infeasible)));
}

#[test]
fn scheduling_lp_relaxations_match_exact_simplex() {
    // Build a real formulation, relax it, and solve the relaxation on
    // both numeric paths via the public row structures.
    let mut g = Ddg::new();
    let a = g.add_node("ld", OpClass::new(2), 3);
    let b = g.add_node("fadd", OpClass::new(1), 2);
    let c = g.add_node("st", OpClass::new(2), 3);
    g.add_edge(a, b, 0).unwrap();
    g.add_edge(b, c, 0).unwrap();
    let machine = Machine::example_clean();
    let f = formulation::build(
        &g,
        &machine,
        3,
        FormulationOptions {
            mapping: MappingMode::CapacityOnly,
            objective: Objective::MinStartTimes,
            ..FormulationOptions::standard()
        },
    )
    .expect("builds");
    let relaxed = f.model.relax();
    let mip = f.model.solve().expect("mip feasible");
    let lp = relaxed.solve().expect("lp feasible");
    assert!(lp.objective() <= mip.objective() + 1e-6);
    // For this chain the LP relaxation is already integral: equal optima.
    assert!(
        (lp.objective() - mip.objective()).abs() < 1e-6,
        "chain relaxation should be tight: lp {} vs mip {}",
        lp.objective(),
        mip.objective()
    );
}
