//! Cross-engine properties on generated corpora: every engine's output
//! passes the same independent validator, and the exact method is never
//! beaten by a heuristic.

use std::time::Duration;
use swp::core::{RateOptimalScheduler, SchedulerConfig};
use swp::heuristics::{IterativeModuloScheduler, ListModuloScheduler};
use swp::loops::suite::{generate, SuiteConfig};
use swp::machine::Machine;

fn corpus(n: usize, seed: u64) -> Vec<swp::loops::suite::GeneratedLoop> {
    generate(&SuiteConfig {
        num_loops: n,
        seed,
        ..SuiteConfig::pldi95_default()
    })
}

#[test]
fn ilp_schedules_validate_and_meet_bounds() {
    let machine = Machine::example_pldi95();
    let scheduler = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            time_limit_per_t: Some(Duration::from_secs(2)),
            ..Default::default()
        },
    );
    for l in corpus(20, 11) {
        if let Ok(r) = scheduler.schedule(&l.ddg) {
            assert_eq!(r.schedule.validate(&l.ddg, &machine), Ok(()), "{}", l.name);
            assert!(r.schedule.initiation_interval() >= r.t_lb(), "{}", l.name);
            assert!(r.schedule.is_mapped(), "{}", l.name);
        }
    }
}

#[test]
fn heuristic_schedules_validate() {
    let machine = Machine::example_pldi95();
    let ims = IterativeModuloScheduler::new(machine.clone());
    let list = ListModuloScheduler::new(machine.clone());
    for l in corpus(40, 22) {
        if let Ok(r) = ims.schedule(&l.ddg) {
            assert_eq!(r.schedule.validate(&l.ddg, &machine), Ok(()), "{}", l.name);
        }
        if let Ok(r) = list.schedule(&l.ddg) {
            assert_eq!(r.schedule.validate(&l.ddg, &machine), Ok(()), "{}", l.name);
        }
    }
}

#[test]
fn exact_never_beaten_by_heuristics() {
    let machine = Machine::example_pldi95();
    let ilp = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            time_limit_per_t: Some(Duration::from_secs(2)),
            ..Default::default()
        },
    );
    let ims = IterativeModuloScheduler::new(machine.clone());
    for l in corpus(12, 33) {
        if l.ddg.num_nodes() > 10 {
            continue;
        }
        let (Ok(a), Ok(b)) = (ilp.schedule(&l.ddg), ims.schedule(&l.ddg)) else {
            continue;
        };
        assert!(
            a.schedule.initiation_interval() <= b.schedule.initiation_interval(),
            "{}: ILP {} > IMS {}",
            l.name,
            a.schedule.initiation_interval(),
            b.schedule.initiation_interval()
        );
    }
}

#[test]
fn non_pipelined_machine_cross_engine() {
    let machine = Machine::example_non_pipelined();
    let ilp = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            time_limit_per_t: Some(Duration::from_secs(2)),
            ..Default::default()
        },
    );
    let ims = IterativeModuloScheduler::new(machine.clone());
    for l in corpus(10, 44) {
        if let Ok(r) = ilp.schedule(&l.ddg) {
            assert_eq!(r.schedule.validate(&l.ddg, &machine), Ok(()), "{}", l.name);
        }
        if let Ok(r) = ims.schedule(&l.ddg) {
            assert_eq!(r.schedule.validate(&l.ddg, &machine), Ok(()), "{}", l.name);
        }
    }
}

#[test]
fn heuristic_incumbent_does_not_change_achieved_period() {
    // With and without the IMS certificate, the driver must land on the
    // same (minimal) period — the certificate only changes who proves
    // feasibility, never which periods were refuted.
    let machine = Machine::example_pldi95();
    let with = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            heuristic_incumbent: true,
            time_limit_per_t: Some(Duration::from_secs(2)),
            ..Default::default()
        },
    );
    let without = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            heuristic_incumbent: false,
            time_limit_per_t: Some(Duration::from_secs(2)),
            ..Default::default()
        },
    );
    for l in corpus(12, 55) {
        if l.ddg.num_nodes() > 8 {
            continue; // keep the pure-ILP side fast
        }
        let (Ok(a), Ok(b)) = (with.schedule(&l.ddg), without.schedule(&l.ddg)) else {
            continue;
        };
        // A timed-out (undecided) period forces the pure-ILP run upward;
        // the equality claim only holds for fully decided searches.
        let undecided = |r: &swp::core::ScheduleResult| {
            r.attempts
                .iter()
                .any(|at| at.outcome == swp::core::PeriodOutcome::TimedOut)
        };
        if undecided(&a) || undecided(&b) {
            continue;
        }
        assert_eq!(
            a.schedule.initiation_interval(),
            b.schedule.initiation_interval(),
            "{}",
            l.name
        );
    }
}
