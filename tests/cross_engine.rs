//! Cross-engine properties on generated corpora: every engine's output
//! passes the same independent validator, and the exact method is never
//! beaten by a heuristic.

use std::time::Duration;
use swp::core::{RateOptimalScheduler, SchedulerConfig};
use swp::heuristics::{IterativeModuloScheduler, ListModuloScheduler};
use swp::loops::suite::{generate, SuiteConfig};
use swp::machine::Machine;

fn corpus(n: usize, seed: u64) -> Vec<swp::loops::suite::GeneratedLoop> {
    generate(&SuiteConfig {
        num_loops: n,
        seed,
        ..SuiteConfig::pldi95_default()
    })
}

#[test]
fn ilp_schedules_validate_and_meet_bounds() {
    let machine = Machine::example_pldi95();
    let scheduler = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            time_limit_per_t: Some(Duration::from_secs(2)),
            ..Default::default()
        },
    );
    for l in corpus(20, 11) {
        if let Ok(r) = scheduler.schedule(&l.ddg) {
            assert_eq!(r.schedule.validate(&l.ddg, &machine), Ok(()), "{}", l.name);
            assert!(r.schedule.initiation_interval() >= r.t_lb(), "{}", l.name);
            assert!(r.schedule.is_mapped(), "{}", l.name);
        }
    }
}

#[test]
fn heuristic_schedules_validate() {
    let machine = Machine::example_pldi95();
    let ims = IterativeModuloScheduler::new(machine.clone());
    let list = ListModuloScheduler::new(machine.clone());
    for l in corpus(40, 22) {
        if let Ok(r) = ims.schedule(&l.ddg) {
            assert_eq!(r.schedule.validate(&l.ddg, &machine), Ok(()), "{}", l.name);
        }
        if let Ok(r) = list.schedule(&l.ddg) {
            assert_eq!(r.schedule.validate(&l.ddg, &machine), Ok(()), "{}", l.name);
        }
    }
}

#[test]
fn exact_never_beaten_by_heuristics() {
    let machine = Machine::example_pldi95();
    let ilp = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            time_limit_per_t: Some(Duration::from_secs(2)),
            ..Default::default()
        },
    );
    let ims = IterativeModuloScheduler::new(machine.clone());
    for l in corpus(12, 33) {
        if l.ddg.num_nodes() > 10 {
            continue;
        }
        let (Ok(a), Ok(b)) = (ilp.schedule(&l.ddg), ims.schedule(&l.ddg)) else {
            continue;
        };
        assert!(
            a.schedule.initiation_interval() <= b.schedule.initiation_interval(),
            "{}: ILP {} > IMS {}",
            l.name,
            a.schedule.initiation_interval(),
            b.schedule.initiation_interval()
        );
    }
}

#[test]
fn non_pipelined_machine_cross_engine() {
    let machine = Machine::example_non_pipelined();
    let ilp = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            time_limit_per_t: Some(Duration::from_secs(2)),
            ..Default::default()
        },
    );
    let ims = IterativeModuloScheduler::new(machine.clone());
    for l in corpus(10, 44) {
        if let Ok(r) = ilp.schedule(&l.ddg) {
            assert_eq!(r.schedule.validate(&l.ddg, &machine), Ok(()), "{}", l.name);
        }
        if let Ok(r) = ims.schedule(&l.ddg) {
            assert_eq!(r.schedule.validate(&l.ddg, &machine), Ok(()), "{}", l.name);
        }
    }
}

#[test]
fn heuristic_incumbent_does_not_change_achieved_period() {
    // With and without the IMS certificate, the driver must land on the
    // same (minimal) period — the certificate only changes who proves
    // feasibility, never which periods were refuted.
    let machine = Machine::example_pldi95();
    let with = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            heuristic_incumbent: true,
            time_limit_per_t: Some(Duration::from_secs(2)),
            ..Default::default()
        },
    );
    let without = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            heuristic_incumbent: false,
            time_limit_per_t: Some(Duration::from_secs(2)),
            ..Default::default()
        },
    );
    for l in corpus(12, 55) {
        if l.ddg.num_nodes() > 8 {
            continue; // keep the pure-ILP side fast
        }
        let (Ok(a), Ok(b)) = (with.schedule(&l.ddg), without.schedule(&l.ddg)) else {
            continue;
        };
        // A timed-out (undecided) period forces the pure-ILP run upward;
        // the equality claim only holds for fully decided searches.
        let undecided = |r: &swp::core::ScheduleResult| {
            r.attempts
                .iter()
                .any(|at| at.outcome == swp::core::PeriodOutcome::TimedOut)
        };
        if undecided(&a) || undecided(&b) {
            continue;
        }
        assert_eq!(
            a.schedule.initiation_interval(),
            b.schedule.initiation_interval(),
            "{}",
            l.name
        );
    }
}

#[test]
fn family_kernels_agree_across_all_engines() {
    // VLIW issue-bundle and register-pressure kernels: the ILP, the CP
    // backend, and the portfolio racer must land on the same proven
    // period, and every accepted schedule must pass the independent
    // checker (and the pressure validator when a cap is in force).
    use swp::core::{Budget, Engine};
    use swp::fuzz::{gen_cases, GenConfig, MachineFamily};
    for (family, seed) in [
        (MachineFamily::Vliw, 77u64),
        (MachineFamily::RegPressure, 88),
    ] {
        let config = GenConfig {
            seed,
            max_nodes: 6,
            family,
            ..GenConfig::default()
        };
        let mut compared = 0usize;
        for case in gen_cases(&config, 12).into_iter().filter(|c| c.guaranteed) {
            let mut proven_periods = Vec::new();
            for engine in [Engine::Ilp, Engine::Cp, Engine::Portfolio] {
                let scheduler = RateOptimalScheduler::new(
                    case.machine.clone(),
                    SchedulerConfig {
                        time_limit_per_t: None,
                        time_limit_total: None,
                        engine,
                        max_live: case.max_live,
                        ..Default::default()
                    },
                );
                let budget = Budget::with_tick_limit(2_000_000);
                let r = scheduler
                    .schedule_with(&case.ddg, &budget)
                    .unwrap_or_else(|e| {
                        panic!(
                            "{}: guaranteed {family:?} case failed on {engine:?}: {e}",
                            case.name
                        )
                    });
                assert_eq!(
                    r.schedule.validate(&case.ddg, &case.machine),
                    Ok(()),
                    "{} on {engine:?}",
                    case.name
                );
                if let Some(limit) = case.max_live {
                    assert_eq!(
                        r.schedule.validate_pressure(&case.ddg, limit),
                        Ok(()),
                        "{} on {engine:?}",
                        case.name
                    );
                }
                if r.is_proven_optimal() {
                    proven_periods.push(r.schedule.initiation_interval());
                }
            }
            if proven_periods.len() > 1 {
                compared += 1;
                assert!(
                    proven_periods.windows(2).all(|w| w[0] == w[1]),
                    "{}: engines disagree on the proven period: {proven_periods:?}",
                    case.name
                );
            }
        }
        assert!(
            compared > 0,
            "{family:?}: the campaign produced no cross-engine comparisons"
        );
    }
}

#[test]
fn optimality_tags_are_honest_across_a_corpus() {
    // Table-4-style reporting: under a deterministic tick budget each
    // result must carry an honest tag — `Proven` only when every smaller
    // period really was refuted, `BudgetExhausted` with a refutation
    // frontier that brackets the true optimum.
    use swp::core::{Budget, Optimality, PeriodOutcome};
    let machine = Machine::example_pldi95();
    let scheduler = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            time_limit_per_t: Some(Duration::from_secs(2)),
            ..Default::default()
        },
    );
    let (mut proven, mut limited) = (0usize, 0usize);
    for (i, l) in corpus(16, 66).into_iter().enumerate() {
        // Alternate generous and starved budgets over the corpus.
        let budget = if i % 2 == 0 {
            Budget::unlimited()
        } else {
            // A handful of ticks: enough to start, never enough to finish.
            Budget::with_tick_limit(1 + (i as u64 % 4))
        };
        let Ok(r) = scheduler.schedule_with(&l.ddg, &budget) else {
            continue;
        };
        assert_eq!(r.schedule.validate(&l.ddg, &machine), Ok(()), "{}", l.name);
        let achieved = r.schedule.initiation_interval();
        match r.optimality {
            Optimality::Proven => {
                proven += 1;
                // Every attempted period below the achieved one is refuted.
                for a in &r.attempts {
                    if a.period < achieved {
                        assert!(
                            matches!(
                                a.outcome,
                                PeriodOutcome::Infeasible | PeriodOutcome::RejectedAtBuild
                            ),
                            "{}: period {} not refuted yet tagged Proven",
                            l.name,
                            a.period
                        );
                    }
                }
            }
            Optimality::BudgetExhausted { smallest_refuted } => {
                limited += 1;
                assert!(smallest_refuted >= r.t_lb(), "{}", l.name);
                assert!(smallest_refuted <= achieved, "{}", l.name);
            }
        }
    }
    // The corpus must exercise both kinds of reporting.
    assert!(proven > 0, "no proven-optimal results in the corpus");
    assert!(limited > 0, "no budget-limited results in the corpus");
}
