//! Failure injection across crate boundaries: every error path a user
//! can hit should produce a typed, descriptive error — never a panic.

use std::time::Duration;
use swp::core::{RateOptimalScheduler, ScheduleError, SchedulerConfig};
use swp::ddg::{Ddg, DdgError, OpClass};
use swp::heuristics::{HeuristicError, IterativeModuloScheduler};
use swp::loops::parse::parse_loop;
use swp::loops::ClassConvention;
use swp::machine::{parse_machine, Machine, ValidationError};

#[test]
fn unknown_class_fails_at_every_layer() {
    let mut g = Ddg::new();
    g.add_node("mystery", OpClass::new(42), 1);
    let machine = Machine::example_pldi95();

    assert!(matches!(
        RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default()).schedule(&g),
        Err(ScheduleError::UnknownClass(_))
    ));
    assert!(matches!(
        IterativeModuloScheduler::new(machine.clone()).schedule(&g),
        Err(HeuristicError::UnknownClass(_))
    ));
    assert!(machine.t_res(&g).is_err());
}

#[test]
fn zero_distance_cycle_fails_everywhere() {
    let mut g = Ddg::new();
    let a = g.add_node("a", OpClass::new(1), 2);
    let b = g.add_node("b", OpClass::new(1), 2);
    g.add_edge(a, b, 0).unwrap();
    g.add_edge(b, a, 0).unwrap();

    assert!(matches!(g.validate(), Err(DdgError::ZeroDistanceCycle(_))));
    assert_eq!(g.t_dep(), None);
    let machine = Machine::example_pldi95();
    assert!(matches!(
        RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default()).schedule(&g),
        Err(ScheduleError::NoFinitePeriod)
    ));
    assert!(matches!(
        IterativeModuloScheduler::new(machine).schedule(&g),
        Err(HeuristicError::NoFinitePeriod)
    ));
}

#[test]
fn exhausted_period_range_reports_attempts() {
    // A loop whose T_lb attempt must time out: cap the range at +0 and
    // give the solver no time.
    let machine = Machine::example_pldi95();
    let g = swp::loops::kernels::fir4(&machine, ClassConvention::example()).ddg;
    let cfg = SchedulerConfig {
        max_t_above_lb: 0,
        time_limit_per_t: Some(Duration::from_millis(1)),
        heuristic_incumbent: false,
        ..Default::default()
    };
    match RateOptimalScheduler::new(machine, cfg).schedule(&g) {
        Err(ScheduleError::NotFound { t_lb, t_max, attempts }) => {
            assert_eq!(t_lb, t_max);
            assert_eq!(attempts.len(), 1);
        }
        other => panic!("expected NotFound, got {other:?}"),
    }
}

#[test]
fn validator_rejects_forged_schedules() {
    let machine = Machine::example_pldi95();
    let g = swp::loops::kernels::motivating_example();
    // Right arity, nonsense times: dependences must catch it.
    let forged = swp::machine::PipelinedSchedule::new(4, vec![0; 6], vec![None; 6]);
    assert!(matches!(
        forged.validate(&g, &machine),
        Err(ValidationError::DependenceViolated { .. })
    ));
    // Satisfy dependences but overload the single Ld/St unit.
    let overload = swp::machine::PipelinedSchedule::new(
        4,
        vec![0, 0, 3, 5, 7, 9],
        vec![None; 6],
    );
    assert!(matches!(
        overload.validate(&g, &machine),
        Err(ValidationError::Conflict(_))
    ));
}

#[test]
fn loop_parser_rejects_garbage_gracefully() {
    let machine = Machine::example_pldi95();
    let conv = ClassConvention::example();
    for src in [
        "",
        "loop x {",
        "loop x {\n}",
        "loop x {\n = fadd a\n}",
        "loop x {\n t = \n}",
        "loop x {\n t = fadd t@banana\n}",
    ] {
        assert!(parse_loop(src, &machine, &conv).is_err(), "accepted: {src:?}");
    }
}

#[test]
fn machine_parser_rejects_garbage_gracefully() {
    for src in [
        "",
        "machine m {",
        "machine m {\n}",
        "machine m {\n unit A count=0 latency=1 clean\n}",
        "machine m {\n unit A count=1 latency=1 clean nonpipelined\n}",
    ] {
        assert!(parse_machine(src).is_err(), "accepted: {src:?}");
    }
}

#[test]
fn parsed_machine_and_loop_compose_end_to_end() {
    let (_, machine) = parse_machine(
        "machine tiny {
            unit INT count=1 latency=1 clean
            unit FP  count=2 latency=2 table[X.. / .X. / .XX]
            unit MEM count=1 latency=3 clean
        }",
    )
    .expect("machine parses");
    let conv = ClassConvention {
        int: OpClass::new(0),
        fp: OpClass::new(1),
        ldst: OpClass::new(2),
        fdiv: None,
    };
    let parsed = parse_loop(
        "loop body {
            t1 = load a[i]
            t2 = fmul t1, w
            s  = fadd s@1, t2
            store t2
        }",
        &machine,
        &conv,
    )
    .expect("loop parses");
    let r = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
        .schedule(&parsed.ddg)
        .expect("schedules");
    assert_eq!(r.schedule.validate(&parsed.ddg, &machine), Ok(()));
    // And it executes.
    let rep = swp::machine::simulate(
        &machine,
        &parsed.ddg,
        &r.schedule,
        25,
        swp::machine::UnitPolicy::Fixed,
    )
    .expect("runs");
    assert!(rep.rate > 0.0);
}
