//! Failure injection across crate boundaries: every error path a user
//! can hit should produce a typed, descriptive error — never a panic.

use std::time::Duration;
use swp::core::{RateOptimalScheduler, ScheduleError, SchedulerConfig};
use swp::ddg::{Ddg, DdgError, OpClass};
use swp::heuristics::{HeuristicError, IterativeModuloScheduler};
use swp::loops::parse::parse_loop;
use swp::loops::ClassConvention;
use swp::machine::{parse_machine, Machine, ValidationError};

#[test]
fn unknown_class_fails_at_every_layer() {
    let mut g = Ddg::new();
    g.add_node("mystery", OpClass::new(42), 1);
    let machine = Machine::example_pldi95();

    assert!(matches!(
        RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default()).schedule(&g),
        Err(ScheduleError::UnknownClass(_))
    ));
    assert!(matches!(
        IterativeModuloScheduler::new(machine.clone()).schedule(&g),
        Err(HeuristicError::UnknownClass(_))
    ));
    assert!(machine.t_res(&g).is_err());
}

#[test]
fn zero_distance_cycle_fails_everywhere() {
    let mut g = Ddg::new();
    let a = g.add_node("a", OpClass::new(1), 2);
    let b = g.add_node("b", OpClass::new(1), 2);
    g.add_edge(a, b, 0).unwrap();
    g.add_edge(b, a, 0).unwrap();

    assert!(matches!(g.validate(), Err(DdgError::ZeroDistanceCycle(_))));
    assert_eq!(g.t_dep(), None);
    let machine = Machine::example_pldi95();
    assert!(matches!(
        RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default()).schedule(&g),
        Err(ScheduleError::NoFinitePeriod)
    ));
    assert!(matches!(
        IterativeModuloScheduler::new(machine).schedule(&g),
        Err(HeuristicError::NoFinitePeriod)
    ));
}

#[test]
fn exhausted_period_range_reports_attempts() {
    // A loop whose T_lb attempt must time out: cap the range at +0 and
    // give the solver no time.
    let machine = Machine::example_pldi95();
    let g = swp::loops::kernels::fir4(&machine, ClassConvention::example()).ddg;
    let cfg = SchedulerConfig {
        max_t_above_lb: 0,
        time_limit_per_t: Some(Duration::from_millis(1)),
        heuristic_incumbent: false,
        ..Default::default()
    };
    match RateOptimalScheduler::new(machine, cfg).schedule(&g) {
        Err(ScheduleError::NotFound {
            t_lb,
            t_max,
            attempts,
        }) => {
            assert_eq!(t_lb, t_max);
            assert_eq!(attempts.len(), 1);
        }
        other => panic!("expected NotFound, got {other:?}"),
    }
}

#[test]
fn validator_rejects_forged_schedules() {
    let machine = Machine::example_pldi95();
    let g = swp::loops::kernels::motivating_example();
    // Right arity, nonsense times: dependences must catch it.
    let forged = swp::machine::PipelinedSchedule::new(4, vec![0; 6], vec![None; 6]);
    assert!(matches!(
        forged.validate(&g, &machine),
        Err(ValidationError::DependenceViolated { .. })
    ));
    // Satisfy dependences but overload the single Ld/St unit.
    let overload = swp::machine::PipelinedSchedule::new(4, vec![0, 0, 3, 5, 7, 9], vec![None; 6]);
    assert!(matches!(
        overload.validate(&g, &machine),
        Err(ValidationError::Conflict(_))
    ));
}

#[test]
fn loop_parser_rejects_garbage_gracefully() {
    let machine = Machine::example_pldi95();
    let conv = ClassConvention::example();
    for src in [
        "",
        "loop x {",
        "loop x {\n}",
        "loop x {\n = fadd a\n}",
        "loop x {\n t = \n}",
        "loop x {\n t = fadd t@banana\n}",
    ] {
        assert!(
            parse_loop(src, &machine, &conv).is_err(),
            "accepted: {src:?}"
        );
    }
}

#[test]
fn machine_parser_rejects_garbage_gracefully() {
    for src in [
        "",
        "machine m {",
        "machine m {\n}",
        "machine m {\n unit A count=0 latency=1 clean\n}",
        "machine m {\n unit A count=1 latency=1 clean nonpipelined\n}",
    ] {
        assert!(parse_machine(src).is_err(), "accepted: {src:?}");
    }
}

#[test]
fn parsed_machine_and_loop_compose_end_to_end() {
    let (_, machine) = parse_machine(
        "machine tiny {
            unit INT count=1 latency=1 clean
            unit FP  count=2 latency=2 table[X.. / .X. / .XX]
            unit MEM count=1 latency=3 clean
        }",
    )
    .expect("machine parses");
    let conv = ClassConvention {
        int: OpClass::new(0),
        fp: OpClass::new(1),
        ldst: OpClass::new(2),
        fdiv: None,
    };
    let parsed = parse_loop(
        "loop body {
            t1 = load a[i]
            t2 = fmul t1, w
            s  = fadd s@1, t2
            store t2
        }",
        &machine,
        &conv,
    )
    .expect("loop parses");
    let r = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
        .schedule(&parsed.ddg)
        .expect("schedules");
    assert_eq!(r.schedule.validate(&parsed.ddg, &machine), Ok(()));
    // And it executes.
    let rep = swp::machine::simulate(
        &machine,
        &parsed.ddg,
        &r.schedule,
        25,
        swp::machine::UnitPolicy::Fixed,
    )
    .expect("runs");
    assert!(rep.rate > 0.0);
}

// --- Budget semantics, cancellation, and injected faults -------------------

use proptest::prelude::*;
use std::time::Instant;
use swp::core::{Budget, FaultPlan, Optimality, PeriodOutcome, SolvedBy};

/// Small well-formed loop on the 3-class example machines (same shape as
/// the core pipeline proptests): forward edges keep distance 0 acyclic.
fn arb_loop() -> impl Strategy<Value = Ddg> {
    (2usize..7).prop_flat_map(|n| {
        let classes = proptest::collection::vec(0usize..3, n);
        let fwd = proptest::collection::vec(any::<u16>(), n - 1);
        let carried = proptest::option::of((0..n, 1u32..3));
        (classes, fwd, carried).prop_map(move |(classes, fwd, carried)| {
            let mut g = Ddg::new();
            let lat = [1u32, 2, 3];
            let ids: Vec<_> = classes
                .iter()
                .enumerate()
                .map(|(i, &c)| g.add_node(format!("n{i}"), OpClass::new(c), lat[c]))
                .collect();
            for (i, &a) in fwd.iter().enumerate() {
                let src = (a as usize) % (i + 1);
                g.add_edge(ids[src], ids[i + 1], 0).expect("valid");
            }
            if let Some((k, d)) = carried {
                g.add_edge(ids[k], ids[k], d).expect("valid");
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Starving the search of ticks must never panic and never leak an
    /// unverified schedule: the result is either a checker-clean schedule
    /// with an honest optimality tag, or a typed error.
    #[test]
    fn tiny_tick_budget_never_panics_never_lies(g in arb_loop(), ticks in 0u64..200) {
        let machine = Machine::example_pldi95();
        let budget = Budget::with_tick_limit(ticks);
        match RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
            .schedule_with(&g, &budget)
        {
            Ok(r) => {
                prop_assert_eq!(r.schedule.validate(&g, &machine), Ok(()));
                if let Optimality::BudgetExhausted { smallest_refuted } = r.optimality {
                    prop_assert!(smallest_refuted >= r.t_lb());
                    prop_assert!(smallest_refuted <= r.schedule.initiation_interval());
                }
            }
            Err(e) => {
                // Typed and displayable is the contract; panics are not.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// An already-expired wall-clock deadline still yields a best-effort,
    /// checker-verified schedule (the grace pass is tick-funded, so a
    /// dead clock cannot starve it too).
    #[test]
    fn expired_deadline_still_returns_verified_schedule(g in arb_loop()) {
        let machine = Machine::example_pldi95();
        let budget = Budget::with_deadline(Duration::from_nanos(1));
        let r = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
            .schedule_with(&g, &budget)
            .expect("degrades to a heuristic schedule, not an error");
        prop_assert_eq!(r.schedule.validate(&g, &machine), Ok(()));
        prop_assert!(matches!(r.optimality, Optimality::BudgetExhausted { .. }));
    }
}

#[test]
fn pre_cancelled_budget_is_a_hard_error() {
    let machine = Machine::example_pldi95();
    let g = swp::loops::kernels::motivating_example();
    let budget = Budget::unlimited();
    budget.cancel_token().cancel();
    assert!(matches!(
        RateOptimalScheduler::new(machine, SchedulerConfig::default()).schedule_with(&g, &budget),
        Err(ScheduleError::Cancelled)
    ));
}

#[test]
fn cancellation_mid_solve_stops_promptly() {
    let machine = Machine::example_pldi95();
    let g = swp::loops::kernels::fir4(&machine, ClassConvention::example()).ddg;
    let cfg = SchedulerConfig {
        heuristic_incumbent: false, // force the slow ILP path
        time_limit_per_t: Some(Duration::from_secs(60)),
        ..Default::default()
    };
    let budget = Budget::unlimited();
    let token = budget.cancel_token();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        token.cancel();
    });
    let started = Instant::now();
    let result = RateOptimalScheduler::new(machine.clone(), cfg).schedule_with(&g, &budget);
    handle.join().expect("canceller thread");
    // Either the solve won the race or the cancellation stopped it — but
    // it must come back orders of magnitude before the 60 s solve limit.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "cancellation did not stop the solve promptly"
    );
    match result {
        Ok(r) => assert_eq!(r.schedule.validate(&g, &machine), Ok(())),
        Err(ScheduleError::Cancelled) => {}
        Err(other) => panic!("unexpected error under cancellation: {other}"),
    }
}

/// Every injected fault must degrade to a verified schedule or a typed
/// error — never a panic, never an unverified schedule.
#[test]
fn fault_injection_exercises_every_degradation_path() {
    let machine = Machine::example_pldi95();
    let g = swp::loops::kernels::motivating_example();
    let run = |faults: FaultPlan, heuristic_incumbent: bool| {
        let cfg = SchedulerConfig {
            heuristic_incumbent,
            faults,
            ..Default::default()
        };
        RateOptimalScheduler::new(machine.clone(), cfg).schedule(&g)
    };
    let verified = |r: &swp::core::ScheduleResult| r.schedule.validate(&g, &machine) == Ok(());

    // Dead heuristic probe: the ILP carries the period alone.
    let r = run(
        FaultPlan {
            fail_heuristic_incumbent: true,
            ..Default::default()
        },
        true,
    )
    .expect("ILP-only path schedules");
    assert!(verified(&r));
    assert!(r
        .attempts
        .iter()
        .any(|a| a.outcome == PeriodOutcome::Feasible(SolvedBy::Ilp)));

    // Dead ILP: the heuristic fallback carries the period.
    let r = run(
        FaultPlan {
            fail_ilp: true,
            ..Default::default()
        },
        false,
    )
    .expect("heuristic fallback schedules");
    assert!(verified(&r));
    assert!(r
        .attempts
        .iter()
        .any(|a| a.outcome == PeriodOutcome::EngineFailed));

    // Checker rejects the ILP schedule: fall back to the heuristic.
    let r = run(
        FaultPlan {
            reject_ilp_schedule: true,
            ..Default::default()
        },
        false,
    )
    .expect("heuristic rescues a rejected ILP schedule");
    assert!(verified(&r));
    assert!(r
        .attempts
        .iter()
        .any(|a| a.outcome == PeriodOutcome::Feasible(SolvedBy::Heuristic)));

    // Checker rejects the heuristic schedule: the ILP rescues it.
    let r = run(
        FaultPlan {
            reject_heuristic_schedule: true,
            ..Default::default()
        },
        true,
    )
    .expect("ILP rescues a rejected heuristic schedule");
    assert!(verified(&r));

    // Both engines rejected: a typed VerificationFailed, not a panic.
    let err = run(
        FaultPlan {
            reject_ilp_schedule: true,
            reject_heuristic_schedule: true,
            ..Default::default()
        },
        true,
    )
    .expect_err("nothing can be certified");
    assert!(matches!(err, ScheduleError::VerificationFailed { .. }));

    // Budget dead before the search even starts: grace pass delivers.
    let r = run(
        FaultPlan {
            expire_before_search: true,
            ..Default::default()
        },
        true,
    )
    .expect("grace pass schedules");
    assert!(verified(&r));
    assert!(matches!(r.optimality, Optimality::BudgetExhausted { .. }));

    // Budget dies right before the ILP stage: same graceful exit.
    let r = run(
        FaultPlan {
            expire_before_ilp: true,
            ..Default::default()
        },
        false,
    )
    .expect("grace pass schedules");
    assert!(verified(&r));
    assert!(matches!(r.optimality, Optimality::BudgetExhausted { .. }));
}
