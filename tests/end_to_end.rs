//! End-to-end integration: DDG → ILP → schedule → independent validation,
//! across machines and against the paper's published artifacts.

use swp::core::coloring::OverlapGraph;
use swp::core::{MappingMode, RateOptimalScheduler, SchedulerConfig};
use swp::loops::{kernels, ClassConvention};
use swp::machine::{Machine, PipelinedSchedule};

#[test]
fn motivating_example_reproduces_the_papers_gap() {
    let ddg = kernels::motivating_example();
    let machine = Machine::example_pldi95();

    // Capacity-only (prior art): rate-optimal at T_lb = 3, but the
    // placement admits no fixed assignment.
    let cap = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            mapping: MappingMode::CapacityOnly,
            ..Default::default()
        },
    )
    .schedule(&ddg)
    .expect("capacity-only schedulable");
    assert_eq!(cap.schedule.initiation_interval(), 3);
    let ops = cap.schedule.placed_ops(&ddg);
    assert!(
        OverlapGraph::build(&machine, 3, &ops).color().is_none(),
        "the paper's gap: no fixed assignment at T = 3"
    );

    // Unified (the paper): T = 3 refuted, T = 4 feasible and mapped.
    let uni = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
        .schedule(&ddg)
        .expect("unified schedulable");
    assert_eq!(uni.schedule.initiation_interval(), 4);
    assert!(uni.schedule.is_mapped());
    assert_eq!(uni.schedule.validate(&ddg, &machine), Ok(()));
}

#[test]
fn papers_schedule_b_matrices() {
    // T = [0,1,3,5,7,11], K = [0,0,0,1,1,2] — the exact Figure 3 data.
    let ddg = kernels::motivating_example();
    let machine = Machine::example_pldi95();
    let s = PipelinedSchedule::new(4, vec![0, 1, 3, 5, 7, 11], vec![None; 6]);
    assert_eq!(s.validate(&ddg, &machine), Ok(()));
    let m = s.matrices();
    assert_eq!(m.k, vec![0, 0, 0, 1, 1, 2]);
    assert_eq!(m.a[1], vec![0, 1, 0, 1, 0, 0]);
    assert_eq!(m.a[3], vec![0, 0, 1, 0, 1, 1]);
    // And a fixed assignment exists for it (the paper's Schedule B claim).
    let ops = s.placed_ops(&ddg);
    assert!(OverlapGraph::build(&machine, 4, &ops).color().is_some());
}

#[test]
fn all_kernels_schedule_and_validate_on_example_machines() {
    for machine in [
        Machine::example_pldi95(),
        Machine::example_clean(),
        Machine::example_non_pipelined(),
    ] {
        let scheduler = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default());
        for k in kernels::all(&machine, ClassConvention::example()) {
            let r = scheduler
                .schedule(&k.ddg)
                .unwrap_or_else(|e| panic!("{} failed: {e}", k.name));
            assert_eq!(
                r.schedule.validate(&k.ddg, &machine),
                Ok(()),
                "kernel {}",
                k.name
            );
            assert!(r.schedule.is_mapped(), "kernel {}", k.name);
            assert!(
                r.schedule.initiation_interval() >= r.t_lb(),
                "kernel {}",
                k.name
            );
        }
    }
}

#[test]
fn kernels_schedule_on_ppc604() {
    let machine = Machine::ppc604();
    let scheduler = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default());
    for k in kernels::all(&machine, ClassConvention::ppc604()) {
        let r = scheduler
            .schedule(&k.ddg)
            .unwrap_or_else(|e| panic!("{} failed: {e}", k.name));
        assert_eq!(
            r.schedule.validate(&k.ddg, &machine),
            Ok(()),
            "kernel {}",
            k.name
        );
    }
}

#[test]
fn divide_kernel_is_throughput_bound_by_the_divider() {
    // vector_normalize has one non-pipelined 18-cycle divide per
    // iteration on the 604 model: T can never beat 18.
    let machine = Machine::ppc604();
    let k = kernels::vector_normalize(&machine, ClassConvention::ppc604());
    let r = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
        .schedule(&k.ddg)
        .expect("schedulable");
    assert!(r.schedule.initiation_interval() >= 18);
    assert!(r.t_res >= 18);
}

#[test]
fn clean_machine_periods_never_exceed_hazard_machine_periods() {
    // Removing hazards can only help the initiation rate.
    let hazard = Machine::example_pldi95();
    let clean = Machine::example_clean();
    let s_h = RateOptimalScheduler::new(hazard.clone(), SchedulerConfig::default());
    let s_c = RateOptimalScheduler::new(clean.clone(), SchedulerConfig::default());
    for k in kernels::all(&hazard, ClassConvention::example()) {
        let th = s_h
            .schedule(&k.ddg)
            .expect("hazard")
            .schedule
            .initiation_interval();
        let tc = s_c
            .schedule(&k.ddg)
            .expect("clean")
            .schedule
            .initiation_interval();
        assert!(tc <= th, "kernel {}: clean {tc} > hazard {th}", k.name);
    }
}

#[test]
fn flat_schedule_respects_cross_iteration_dependences() {
    let ddg = kernels::motivating_example();
    let machine = Machine::example_pldi95();
    let r = RateOptimalScheduler::new(machine, SchedulerConfig::default())
        .schedule(&ddg)
        .expect("schedulable");
    let s = &r.schedule;
    let flat = s.flat(5);
    let cycle_of = |iter: u32, node: usize| {
        flat.iter()
            .find(|&&(j, n, _)| j == iter && n.index() == node)
            .map(|&(_, _, c)| c)
            .expect("present")
    };
    for e in ddg.edges() {
        let d = ddg.node(e.src).latency as u64;
        for j in 0..(5 - e.distance) {
            let src_c = cycle_of(j, e.src.index());
            let dst_c = cycle_of(j + e.distance, e.dst.index());
            assert!(
                dst_c >= src_c + d,
                "iteration {j}: edge {}->{} violated in flat schedule",
                e.src.index(),
                e.dst.index()
            );
        }
    }
}
