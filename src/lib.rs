//! Umbrella crate for the software-pipelining reproduction of
//! Altman, Govindarajan & Gao, *"Scheduling and Mapping: Software
//! Pipelining in the Presence of Structural Hazards"* (PLDI 1995).
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use swp::...`:
//!
//! * [`milp`] — exact/floating-point MILP solver substrate (simplex,
//!   branch-and-bound, big rationals, LP-format export).
//! * [`ddg`] — data-dependence graphs and period lower bounds.
//! * [`machine`] — reservation tables, collision vectors, packing
//!   capacity, conflict checks, a machine-description parser, and a
//!   cycle-accurate execution simulator.
//! * [`core`] — the paper's unified ILP scheduling + mapping framework,
//!   plus circular-arc coloring analysis and kernel code generation.
//! * [`heuristics`] — iterative modulo scheduling baselines.
//! * [`loops`] — kernel DDGs, a textual loop language, and the
//!   1066-loop synthetic suite.
//! * [`harness`] — sharded parallel corpus execution with an on-disk
//!   JSONL result cache and per-run telemetry.
//! * [`fuzz`] — differential fuzzing of the engines against each other,
//!   metamorphic oracles, and a delta-debugging shrinker.
//!
//! # Quickstart
//!
//! ```
//! use swp::core::{RateOptimalScheduler, SchedulerConfig};
//! use swp::loops::kernels;
//! use swp::machine::Machine;
//!
//! let machine = Machine::example_pldi95();
//! let loop_ = kernels::motivating_example();
//! let result = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
//!     .schedule(&loop_)
//!     .expect("motivating example is schedulable");
//! assert_eq!(result.schedule.initiation_interval(), 4); // the paper's T
//! assert!(result.schedule.validate(&loop_, &machine).is_ok());
//! ```

pub use swp_core as core;
pub use swp_ddg as ddg;
pub use swp_fuzz as fuzz;
pub use swp_harness as harness;
pub use swp_heuristics as heuristics;
pub use swp_loops as loops;
pub use swp_machine as machine;
pub use swp_milp as milp;
