//! Offline, dependency-free subset of the `criterion` 0.5 API.
//!
//! This workspace builds in environments with no crates.io access, so the
//! benchmark harness surface the `swp-bench` benches use is vendored
//! here: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a warm-up pass, then a fixed
//! number of timed samples with mean and min/max reported to stdout. It
//! is good enough to compare orders of magnitude and to keep the bench
//! targets compiling and runnable; it is not a statistics engine.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group (`"function/parameter"`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Accepted by `bench_function` / `bench_with_input` as a benchmark name.
pub trait IntoBenchmarkName {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for &String {
    fn into_name(self) -> String {
        self.clone()
    }
}

/// Passed to the closure under measurement.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Times `routine`, running it once per sample after one warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        let mean = total / self.samples as u32;
        println!(
            "    time: [{min:>10.3?} {mean:>10.3?} {max:>10.3?}]  ({} samples)",
            self.samples
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time (accepted, unused by the shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkName, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{}/{}", self.name, id.into_name());
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b);
        self.parent.ran += 1;
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkName,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("{}/{}", self.name, id.into_name());
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b, input);
        self.parent.ran += 1;
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            ran: 0,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the shim has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkName, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{}", id.into_name());
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b);
        self.ran += 1;
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            parent: self,
            sample_size,
        }
    }

    /// Prints a closing summary.
    pub fn final_summary(&mut self) {
        println!("ran {} benchmarks", self.ran);
    }
}

/// Prevents the optimizer from discarding a value (re-export shim).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Emits a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
