//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `rand` entry points the loop-suite generator uses are
//! vendored here: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — the same
//! family the real `SmallRng` uses on 64-bit targets. Streams are *not*
//! guaranteed to match the upstream crate bit-for-bit; everything in this
//! repository that consumes randomness only relies on determinism for a
//! fixed seed, which this shim provides.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, as the real `rand` does.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`], generic over the element type
/// so integer literals infer from the expected output (as upstream).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (reject_sample(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + reject_sample(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + reject_sample(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Uniform in `[0, span)` by multiply-shift; modulo bias is below 2^-32
/// for every span this workspace uses, which is immaterial here.
fn reject_sample<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as upstream rand_core does.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&x));
            let y = rng.gen_range(0.2..0.4);
            assert!((0.2..0.4).contains(&y));
            let z = rng.gen_range(1u32..3);
            assert!((1..3).contains(&z));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn distribution_is_not_degenerate() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean = {mean}");
    }
}
