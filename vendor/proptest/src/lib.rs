//! Offline, dependency-free subset of the `proptest` 1.x API.
//!
//! This workspace builds in environments with no crates.io access, so the
//! slice of `proptest` the property tests use is vendored here:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map`,
//!   `prop_filter`;
//! * strategies over integer/float ranges, tuples, [`collection::vec`],
//!   [`collection::btree_set`], [`option::of`], [`Just`], and
//!   [`any`] for primitive types;
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, and the
//!   `prop_assert*` macros.
//!
//! **No shrinking** is performed: a failing case panics with the seed and
//! case index so it can be replayed by rerunning the (deterministic)
//! test. Generation is seeded per test from the test's name, so runs are
//! reproducible.
//!
//! # Reseeding a run
//!
//! Set `SWP_PROPTEST_SEED=<u64>` (decimal or `0x…` hex) to perturb every
//! suite's value stream — the seed is mixed into each test's per-case
//! RNG, so seed `0` (the default when the variable is unset) reproduces
//! the historical streams bit for bit, and any other value explores a
//! fresh deterministic batch of cases. On failure the harness prints the
//! test name, case index, and active seed, so the exact failing run can
//! be replayed with `SWP_PROPTEST_SEED=<seed> cargo test <name>`.

use std::cell::Cell;

/// Re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{any, prop, proptest};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
}

/// Alias module mirroring `proptest::prop` (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Maximum rejected (filtered) values tolerated per case.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 1024,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Deterministic generator (xoshiro256++ over a splitmix64 seed).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds deterministically from an arbitrary byte string (the
        /// test name) plus a case index.
        pub fn from_name_and_case(name: &str, case: u64) -> Self {
            Self::from_name_case_and_seed(name, case, 0)
        }

        /// [`from_name_and_case`](Self::from_name_and_case) with an
        /// extra campaign seed mixed in (the `SWP_PROPTEST_SEED`
        /// mechanism). Seed `0` reproduces the unseeded stream exactly.
        pub fn from_name_case_and_seed(name: &str, case: u64, seed: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut x = h
                ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ seed.wrapping_mul(0xA24B_AED4_963E_E407);
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, span)`; `span` must be positive.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Parses an `SWP_PROPTEST_SEED` value: `None` or an empty/whitespace
/// string means seed `0` (the historical stream); otherwise a decimal or
/// `0x`-prefixed hexadecimal `u64`.
///
/// # Errors
///
/// A message naming the unparseable value — a typo'd seed should fail
/// the run loudly, not silently test the default stream.
pub fn parse_seed(var: Option<&str>) -> Result<u64, String> {
    let Some(raw) = var else { return Ok(0) };
    let s = raw.trim();
    if s.is_empty() {
        return Ok(0);
    }
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse::<u64>(),
    };
    parsed.map_err(|_| format!("SWP_PROPTEST_SEED must be a u64 (decimal or 0x hex), got `{raw}`"))
}

/// The process-wide campaign seed from `SWP_PROPTEST_SEED` (cached;
/// panics on an unparseable value).
#[doc(hidden)]
pub fn __env_seed() -> u64 {
    static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *SEED.get_or_init(|| {
        parse_seed(std::env::var("SWP_PROPTEST_SEED").ok().as_deref())
            .unwrap_or_else(|e| panic!("{e}"))
    })
}

thread_local! {
    static REJECT_BUDGET: Cell<u32> = const { Cell::new(u32::MAX) };
}

/// Sets the per-case reject budget (used by the `proptest!` expansion).
#[doc(hidden)]
pub fn __set_reject_budget(n: u32) {
    REJECT_BUDGET.with(|b| b.set(n));
}

fn spend_reject(reason: &str) {
    REJECT_BUDGET.with(|b| {
        let left = b.get();
        assert!(
            left > 0,
            "proptest: too many filter rejections (last reason: {reason})"
        );
        b.set(left - 1);
    });
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// returns for it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects values failing `f`; bounded retries, then the test
        /// errors with `reason`.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }

        /// Boxes the strategy (helper mirroring `boxed`; rarely needed).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn StrategyObj<Value = T>>);

    trait StrategyObj {
        type Value;
        fn generate_obj(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> StrategyObj for S {
        type Value = S::Value;
        fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_obj(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: String,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            loop {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
                super::spend_reject(&self.reason);
            }
        }
    }

    macro_rules! impl_range_strategy_uint {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub use strategy::Strategy;

/// `any::<T>()` support for primitive types.
pub mod arbitrary {
    use super::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the canonical distribution.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, modest magnitude: plenty for tests.
            (rng.unit_f64() - 0.5) * 2e6
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// The canonical strategy for `T` (full range for primitives).
pub fn any<T: arbitrary::Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Size specifications: an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi - self.lo) as u64;
            self.lo + rng.below(span.max(1)) as usize
        }
    }

    /// `Vec<T>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet<T>` with cardinality drawn from `size` (best-effort: if
    /// the element domain is too small, fewer elements are returned).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// `Option<T>` strategies.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `None` a quarter of the time, `Some(value)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Defines property tests. Mirrors the upstream macro's common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(any::<bool>(), 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Bind each strategy once, shadowing the argument names.
            $(let $arg = $strat;)+
            let __swp_seed = $crate::__env_seed();
            let __swp_name = concat!(module_path!(), "::", stringify!($name));
            let __swp_case = ::std::cell::Cell::new(0u32);
            // The whole case loop lives inside one catch_unwind so that
            // `prop_assume!` (which expands to `continue`) still targets
            // the loop, while a panic anywhere reports which case — and
            // which campaign seed — to replay.
            let __swp_result =
                ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    for case in 0..config.cases {
                        __swp_case.set(case);
                        $crate::__set_reject_budget(config.max_global_rejects);
                        let mut rng =
                            $crate::test_runner::TestRng::from_name_case_and_seed(
                                __swp_name,
                                case as u64,
                                __swp_seed,
                            );
                        $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                        $body
                    }
                }));
            if let Err(panic) = __swp_result {
                eprintln!(
                    "proptest: {} failed at case {} with SWP_PROPTEST_SEED={} \
                     (set SWP_PROPTEST_SEED={} to replay this stream)",
                    __swp_name,
                    __swp_case.get(),
                    __swp_seed,
                    __swp_seed,
                );
                ::std::panic::resume_unwind(panic);
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Discards the current case when the assumption fails.
///
/// Implemented as a bounded skip: the case simply returns early. (The
/// shim runs each case in a plain loop, so a failed assumption behaves
/// like an empty case rather than a retried one.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, u32)> {
        (1usize..5).prop_flat_map(|n| (Just(n), 0u32..10).prop_map(|(n, x)| (n, x)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3usize..=7, y in -9i64..=9) {
            prop_assert!((3..=7).contains(&x));
            prop_assert!((-9..=9).contains(&y));
        }

        #[test]
        fn collections_sized(v in prop::collection::vec(any::<bool>(), 4),
                             s in prop::collection::btree_set((0usize..6, 0usize..6), 0..8)) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!(s.len() < 8);
        }

        #[test]
        fn flat_map_composes(p in arb_pair()) {
            prop_assert!(p.0 >= 1 && p.0 < 5);
            prop_assert!(p.1 < 10);
        }

        #[test]
        fn filter_retries(x in (0u32..100).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0u64..1000, prop::collection::vec(0i64..5, 2..6));
        let mut a = TestRng::from_name_and_case("t", 3);
        let mut b = TestRng::from_name_and_case("t", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn seed_zero_reproduces_the_unseeded_stream() {
        let mut unseeded = TestRng::from_name_and_case("t", 3);
        let mut zero = TestRng::from_name_case_and_seed("t", 3, 0);
        for _ in 0..16 {
            assert_eq!(unseeded.next_u64(), zero.next_u64());
        }
    }

    #[test]
    fn nonzero_seeds_diverge_and_are_deterministic() {
        let mut base = TestRng::from_name_and_case("t", 3);
        let mut seeded = TestRng::from_name_case_and_seed("t", 3, 42);
        let mut seeded2 = TestRng::from_name_case_and_seed("t", 3, 42);
        let mut other = TestRng::from_name_case_and_seed("t", 3, 43);
        let (a, b, c, d) = (
            base.next_u64(),
            seeded.next_u64(),
            seeded2.next_u64(),
            other.next_u64(),
        );
        assert_eq!(b, c, "same seed, same stream");
        assert_ne!(a, b, "seed 42 must perturb the stream");
        assert_ne!(b, d, "different seeds, different streams");
    }

    #[test]
    fn parse_seed_accepts_decimal_hex_and_absent() {
        assert_eq!(crate::parse_seed(None), Ok(0));
        assert_eq!(crate::parse_seed(Some("")), Ok(0));
        assert_eq!(crate::parse_seed(Some("  ")), Ok(0));
        assert_eq!(crate::parse_seed(Some("12345")), Ok(12345));
        assert_eq!(crate::parse_seed(Some(" 7 ")), Ok(7));
        assert_eq!(crate::parse_seed(Some("0xff")), Ok(255));
        assert_eq!(crate::parse_seed(Some("0XFF")), Ok(255));
        assert_eq!(crate::parse_seed(Some(&u64::MAX.to_string())), Ok(u64::MAX));
        assert!(crate::parse_seed(Some("banana")).is_err());
        assert!(crate::parse_seed(Some("-1")).is_err());
        assert!(crate::parse_seed(Some("0xg")).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        #[should_panic(expected = "deliberate failure")]
        fn failures_reach_the_test_harness_through_the_wrapper(x in 0u32..10) {
            // Exercises the catch_unwind Err path: the wrapper reports
            // test/case/seed on stderr, then must re-throw the original
            // panic so the harness still sees the test fail.
            if x >= 3 {
                panic!("deliberate failure at x={x}");
            }
        }

        #[test]
        fn assume_still_skips_under_the_panic_wrapper(x in 0u32..10) {
            // `prop_assume!` expands to `continue`; this compiles and
            // runs only if the case loop is still the innermost loop
            // around the body after the catch_unwind wrapping.
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
